// Tests for the 1D FFT engine: all execution styles against the dense
// reference, analytic DFT properties, and parameterised size sweeps.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "fft/reference.h"
#include "fft1d/fft1d.h"
#include "kernels/vecops.h"
#include "test_util.h"

namespace bwfft {
namespace {

using test::fft_tol;
using test::max_err;

cvec reference_fft(const cvec& x, Direction dir) {
  cvec y(x.size());
  reference_dft_1d(x.data(), y.data(), static_cast<idx_t>(x.size()), dir);
  return y;
}

class Fft1dSizes : public ::testing::TestWithParam<idx_t> {};

TEST_P(Fft1dSizes, BatchMatchesReference) {
  const idx_t n = GetParam();
  Fft1d plan(n, Direction::Forward);
  auto x = random_cvec(n, 100 + n);
  auto want = reference_fft(x, Direction::Forward);
  cvec got = x;
  plan.apply_batch(got.data(), 1);
  EXPECT_LT(max_err(want, got), fft_tol(static_cast<double>(n))) << "n=" << n;
}

TEST_P(Fft1dSizes, InverseMatchesReference) {
  const idx_t n = GetParam();
  Fft1d plan(n, Direction::Inverse);
  auto x = random_cvec(n, 200 + n);
  auto want = reference_fft(x, Direction::Inverse);
  cvec got = x;
  plan.apply_batch(got.data(), 1);
  EXPECT_LT(max_err(want, got), fft_tol(static_cast<double>(n)));
}

TEST_P(Fft1dSizes, ForwardInverseRoundTrip) {
  const idx_t n = GetParam();
  Fft1d fwd(n, Direction::Forward), inv(n, Direction::Inverse);
  auto x = random_cvec(n, 300 + n);
  cvec y = x;
  fwd.apply_batch(y.data(), 1);
  inv.apply_batch(y.data(), 1);
  inv.scale_inverse(y.data(), n);
  EXPECT_LT(max_err(x, y), fft_tol(static_cast<double>(n)));
}

// Power-of-two sizes exercise Stockham; 3,5,6,7 the codelets; 9..60 the
// Bluestein chirp-z path; 1 the no-op edge.
INSTANTIATE_TEST_SUITE_P(AllPaths, Fft1dSizes,
                         ::testing::Values<idx_t>(1, 2, 3, 4, 5, 6, 7, 8, 9,
                                                  10, 12, 15, 16, 17, 31, 32,
                                                  60, 64, 128, 256, 1024));

TEST(Fft1d, BatchTransformsEachPencilIndependently) {
  const idx_t n = 16, count = 5;
  Fft1d plan(n, Direction::Forward);
  auto x = random_cvec(n * count, 42);
  cvec got = x;
  plan.apply_batch(got.data(), count);
  for (idx_t t = 0; t < count; ++t) {
    cvec pencil(x.begin() + t * n, x.begin() + (t + 1) * n);
    auto want = reference_fft(pencil, Direction::Forward);
    cvec gp(got.begin() + t * n, got.begin() + (t + 1) * n);
    EXPECT_LT(max_err(want, gp), fft_tol(16.0)) << "pencil " << t;
  }
}

class Fft1dLanes : public ::testing::TestWithParam<std::tuple<idx_t, idx_t>> {};

TEST_P(Fft1dLanes, LanesTransformEachLanePencil) {
  const auto [n, lanes] = GetParam();
  Fft1d plan(n, Direction::Forward);
  auto x = random_cvec(n * lanes, 77);
  cvec got = x;
  plan.apply_lanes(got.data(), lanes, 1);
  for (idx_t l = 0; l < lanes; ++l) {
    cvec pencil(static_cast<std::size_t>(n));
    for (idx_t j = 0; j < n; ++j) pencil[static_cast<std::size_t>(j)] = x[static_cast<std::size_t>(j * lanes + l)];
    auto want = reference_fft(pencil, Direction::Forward);
    for (idx_t j = 0; j < n; ++j) {
      EXPECT_NEAR(0.0,
                  std::abs(want[static_cast<std::size_t>(j)] -
                           got[static_cast<std::size_t>(j * lanes + l)]),
                  fft_tol(static_cast<double>(n)))
          << "n=" << n << " lane " << l << " j=" << j;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    LaneShapes, Fft1dLanes,
    ::testing::Combine(::testing::Values<idx_t>(2, 4, 8, 32, 128),
                       ::testing::Values<idx_t>(1, 2, 4, 8)));

TEST(Fft1d, StridedInplaceMatchesBatch) {
  const idx_t n = 64, stride = 5;
  Fft1d plan(n, Direction::Forward);
  auto x = random_cvec(n * stride, 7);
  cvec strided = x;
  plan.apply_strided_inplace(strided.data(), stride);
  cvec pencil(static_cast<std::size_t>(n));
  for (idx_t j = 0; j < n; ++j) pencil[static_cast<std::size_t>(j)] = x[static_cast<std::size_t>(j * stride)];
  plan.apply_batch(pencil.data(), 1);
  for (idx_t j = 0; j < n; ++j) {
    EXPECT_NEAR(0.0,
                std::abs(pencil[static_cast<std::size_t>(j)] -
                         strided[static_cast<std::size_t>(j * stride)]),
                fft_tol(64.0));
    // Elements between strides must be untouched.
    for (idx_t o = 1; o < stride; ++o) {
      EXPECT_EQ(x[static_cast<std::size_t>(j * stride + o)],
                strided[static_cast<std::size_t>(j * stride + o)]);
    }
  }
}

TEST(Fft1d, StridedLanesMatchesGather) {
  const idx_t n = 32, lanes = 4, row_stride = 20;
  Fft1d plan(n, Direction::Forward);
  auto x = random_cvec(n * row_stride, 8);
  cvec got = x;
  plan.apply_lanes_strided(got.data(), lanes, row_stride);
  for (idx_t l = 0; l < lanes; ++l) {
    cvec pencil(static_cast<std::size_t>(n));
    for (idx_t j = 0; j < n; ++j) pencil[static_cast<std::size_t>(j)] = x[static_cast<std::size_t>(j * row_stride + l)];
    plan.apply_batch(pencil.data(), 1);
    for (idx_t j = 0; j < n; ++j) {
      EXPECT_NEAR(0.0,
                  std::abs(pencil[static_cast<std::size_t>(j)] -
                           got[static_cast<std::size_t>(j * row_stride + l)]),
                  fft_tol(32.0));
    }
  }
}

TEST(Fft1d, ScalarPathMatchesVectorPath) {
  const idx_t n = 256;
  auto x = random_cvec(n, 9);
  Fft1d plan(n, Direction::Forward);
  cvec vec_result = x;
  plan.apply_batch(vec_result.data(), 1);
  set_force_scalar(true);
  cvec scal_result = x;
  plan.apply_batch(scal_result.data(), 1);
  set_force_scalar(false);
  EXPECT_LT(max_err(vec_result, scal_result), 1e-13);
}

// Linearity: F(a x + b y) = a F(x) + b F(y).
TEST(Fft1d, Linearity) {
  const idx_t n = 128;
  Fft1d plan(n, Direction::Forward);
  auto x = random_cvec(n, 10);
  auto y = random_cvec(n, 11);
  const cplx a(0.3, -1.2), b(2.0, 0.5);
  cvec mix(static_cast<std::size_t>(n));
  for (idx_t i = 0; i < n; ++i) mix[static_cast<std::size_t>(i)] = a * x[static_cast<std::size_t>(i)] + b * y[static_cast<std::size_t>(i)];
  plan.apply_batch(mix.data(), 1);
  cvec fx = x, fy = y;
  plan.apply_batch(fx.data(), 1);
  plan.apply_batch(fy.data(), 1);
  for (idx_t i = 0; i < n; ++i) {
    const cplx want = a * fx[static_cast<std::size_t>(i)] + b * fy[static_cast<std::size_t>(i)];
    EXPECT_NEAR(0.0, std::abs(want - mix[static_cast<std::size_t>(i)]), fft_tol(128.0));
  }
}

// Parseval: sum |x|^2 = (1/n) sum |X|^2.
TEST(Fft1d, Parseval) {
  const idx_t n = 512;
  Fft1d plan(n, Direction::Forward);
  auto x = random_cvec(n, 12);
  double in_energy = 0.0;
  for (const auto& v : x) in_energy += std::norm(v);
  plan.apply_batch(x.data(), 1);
  double out_energy = 0.0;
  for (const auto& v : x) out_energy += std::norm(v);
  EXPECT_NEAR(in_energy, out_energy / static_cast<double>(n),
              1e-10 * in_energy);
}

// Shift theorem: x[(j+s) mod n] <-> X[k] * w^{-ks}.
TEST(Fft1d, ShiftTheorem) {
  const idx_t n = 64, s = 5;
  Fft1d plan(n, Direction::Forward);
  auto x = random_cvec(n, 13);
  cvec shifted(static_cast<std::size_t>(n));
  for (idx_t j = 0; j < n; ++j) shifted[static_cast<std::size_t>(j)] = x[static_cast<std::size_t>((j + s) % n)];
  cvec fx = x;
  plan.apply_batch(fx.data(), 1);
  plan.apply_batch(shifted.data(), 1);
  for (idx_t k = 0; k < n; ++k) {
    // Y[k] = X[k] * e^{+2 pi i k s / n} for a left shift by s.
    const cplx w = root_of_unity(n, (k * s) % n, Direction::Inverse);
    EXPECT_NEAR(0.0,
                std::abs(shifted[static_cast<std::size_t>(k)] -
                         fx[static_cast<std::size_t>(k)] * w),
                fft_tol(64.0))
        << k;
  }
}

TEST(Fft1d, RejectsInvalidSizes) {
  EXPECT_THROW(Fft1d(0, Direction::Forward), Error);
  Fft1d plan(12, Direction::Forward);  // non-pow2
  cvec x(12);
  EXPECT_THROW(plan.apply_strided_inplace(x.data(), 1), Error);
}

}  // namespace
}  // namespace bwfft
