// Tests for the public facade: in-place execution, engine naming, move
// semantics, option validation and error paths.
#include <gtest/gtest.h>

#include <utility>

#include "common/rng.h"
#include "common/topology.h"
#include "fft/fft.h"
#include "fft/reference.h"
#include "fft/stage.h"
#include "kernels/isa.h"
#include "test_util.h"

namespace bwfft {
namespace {

using test::fft_tol;
using test::max_err;

TEST(Facade, ExecuteInplace3d) {
  const idx_t k = 4, n = 8, m = 8;
  auto x = random_cvec(k * n * m, 9100);
  cvec want(x.size());
  reference_dft_3d(x.data(), want.data(), k, n, m, Direction::Forward);
  FftOptions o;
  o.threads = 2;
  o.block_elems = 512;
  Fft3d plan(k, n, m, Direction::Forward, o);
  cvec data = x;
  plan.execute_inplace(data.data());
  EXPECT_LT(max_err(want, data), fft_tol(static_cast<double>(k * n * m)));
  // Second in-place call reuses the work buffer.
  cvec data2 = x;
  plan.execute_inplace(data2.data());
  EXPECT_EQ(0.0, max_err(data, data2));
}

TEST(Facade, ExecuteInplace2d) {
  const idx_t n = 8, m = 16;
  auto x = random_cvec(n * m, 9101);
  cvec want(x.size());
  reference_dft_2d(x.data(), want.data(), n, m, Direction::Forward);
  Fft2d plan(n, m, Direction::Forward, {});
  cvec data = x;
  plan.execute_inplace(data.data());
  EXPECT_LT(max_err(want, data), fft_tol(static_cast<double>(n * m)));
}

TEST(Facade, EngineNames) {
  EXPECT_STREQ("reference", engine_name(EngineKind::Reference));
  EXPECT_STREQ("pencil", engine_name(EngineKind::Pencil));
  EXPECT_STREQ("stage-parallel", engine_name(EngineKind::StageParallel));
  EXPECT_STREQ("slab-pencil", engine_name(EngineKind::SlabPencil));
  EXPECT_STREQ("double-buffer", engine_name(EngineKind::DoubleBuffer));
  EXPECT_STREQ("auto", engine_name(EngineKind::Auto));

  Fft3d plan(4, 4, 4, Direction::Forward, {});
  EXPECT_STREQ("double-buffer", plan.engine_name());
}

TEST(Facade, EngineAndLevelParsing) {
  EngineKind kind;
  EXPECT_TRUE(engine_kind_from_name("double-buffer", &kind));
  EXPECT_EQ(EngineKind::DoubleBuffer, kind);
  EXPECT_TRUE(engine_kind_from_name("dbuf", &kind));
  EXPECT_EQ(EngineKind::DoubleBuffer, kind);
  EXPECT_TRUE(engine_kind_from_name("auto", &kind));
  EXPECT_EQ(EngineKind::Auto, kind);
  EXPECT_FALSE(engine_kind_from_name("warp-drive", &kind));

  TuneLevel level;
  EXPECT_TRUE(tune_level_from_name("measure", &level));
  EXPECT_EQ(TuneLevel::Measure, level);
  EXPECT_FALSE(tune_level_from_name("MEASURE", &level));
  EXPECT_STREQ("exhaustive", tune_level_name(TuneLevel::Exhaustive));
}

TEST(Facade, AutoEngineResolvesThroughTheFacade) {
  calibrate_host_bandwidth(25.0);  // keep the planner off real STREAM runs
  const idx_t n = 16, m = 16;
  auto x = random_cvec(n * m, 9104);
  cvec want(x.size());
  reference_dft_2d(x.data(), want.data(), n, m, Direction::Forward);
  FftOptions o;
  o.engine = EngineKind::Auto;
  o.tune_level = TuneLevel::Estimate;
  o.threads = 2;
  Fft2d plan(n, m, Direction::Forward, o);
  EXPECT_STRNE("auto", plan.engine_name());
  cvec in = x, out(x.size());
  plan.execute(in.data(), out.data());
  EXPECT_LT(max_err(want, out), fft_tol(static_cast<double>(n * m)));
}

TEST(Facade, Fft2dIsMovable) {
  const idx_t n = 8, m = 16;
  auto x = random_cvec(n * m, 9105);
  cvec want(x.size());
  reference_dft_2d(x.data(), want.data(), n, m, Direction::Forward);

  Fft2d plan(n, m, Direction::Forward, {});
  cvec data = x;
  plan.execute_inplace(data.data());  // allocates the work buffer pre-move

  Fft2d moved(std::move(plan));
  EXPECT_EQ(n, moved.rows());
  EXPECT_EQ(m, moved.cols());
  EXPECT_STREQ("double-buffer", moved.engine_name());
  cvec data2 = x;
  moved.execute_inplace(data2.data());
  EXPECT_LT(max_err(want, data2), fft_tol(static_cast<double>(n * m)));

  Fft2d assigned(4, 8, Direction::Forward, {});
  assigned = std::move(moved);
  EXPECT_EQ(n, assigned.rows());
  cvec in = x, out(x.size());
  assigned.execute(in.data(), out.data());
  EXPECT_LT(max_err(want, out), fft_tol(static_cast<double>(n * m)));
}

TEST(Facade, Fft3dIsMovable) {
  const idx_t k = 4, n = 8, m = 8;
  auto x = random_cvec(k * n * m, 9106);
  cvec want(x.size());
  reference_dft_3d(x.data(), want.data(), k, n, m, Direction::Forward);

  Fft3d plan(k, n, m, Direction::Forward, {});
  Fft3d moved(std::move(plan));
  EXPECT_EQ(k * n * m, moved.size());
  cvec in = x, out(x.size());
  moved.execute(in.data(), out.data());
  EXPECT_LT(max_err(want, out), fft_tol(static_cast<double>(k * n * m)));

  Fft3d assigned(2, 4, 4, Direction::Forward, {});
  assigned = std::move(moved);
  EXPECT_EQ(m, assigned.dim2());
  cvec data = x;
  assigned.execute_inplace(data.data());
  EXPECT_LT(max_err(want, data), fft_tol(static_cast<double>(k * n * m)));
}

TEST(Facade, ReferenceEngineThroughFacade) {
  const idx_t k = 2, n = 4, m = 4;
  auto x = random_cvec(k * n * m, 9102);
  cvec want(x.size());
  reference_dft_3d(x.data(), want.data(), k, n, m, Direction::Forward);
  FftOptions o;
  o.engine = EngineKind::Reference;
  Fft3d plan(k, n, m, Direction::Forward, o);
  cvec in = x, out(x.size());
  plan.execute(in.data(), out.data());
  EXPECT_LT(max_err(want, out), 1e-10);
}

TEST(Facade, ReferenceEngineNormalizedInverse) {
  const idx_t n = 4, m = 4;
  auto x = random_cvec(n * m, 9103);
  FftOptions fo;
  fo.engine = EngineKind::Reference;
  auto io = fo;
  io.normalize_inverse = true;
  Fft2d fwd(n, m, Direction::Forward, fo);
  Fft2d inv(n, m, Direction::Inverse, io);
  cvec a = x, b(x.size()), c(x.size());
  fwd.execute(a.data(), b.data());
  inv.execute(b.data(), c.data());
  EXPECT_LT(max_err(x, c), 1e-10);
}

TEST(Facade, StageGeometryHelpers) {
  EXPECT_EQ(4, packet_size_for(64));
  EXPECT_EQ(4, packet_size_for(4));
  EXPECT_EQ(2, packet_size_for(6));
  EXPECT_EQ(1, packet_size_for(7));
  // The auto packet widens to two cachelines only under AVX-512 dispatch
  // (its batch table runs 8 complex lanes per chunk).
  const bool avx512 = kernels::active_isa() == kernels::Isa::Avx512;
  EXPECT_EQ(avx512 ? 8 : 4, resolve_packet_size(0, 64));
  EXPECT_EQ(4, resolve_packet_size(0, 4));  // capped by the fast dim
  EXPECT_EQ(2, resolve_packet_size(2, 64));
  EXPECT_THROW(resolve_packet_size(3, 64), Error);

  EXPECT_EQ(8, rows_per_block(64, 10));  // largest divisor <= 10
  EXPECT_EQ(7, rows_per_block(21, 8));
  EXPECT_EQ(1, rows_per_block(13, 5));
  EXPECT_EQ(64, rows_per_block(64, 1000));
}

TEST(Facade, InvalidPacketOptionThrows) {
  FftOptions o;
  o.packet_elems = 3;  // does not divide m = 8
  EXPECT_THROW(Fft3d(4, 4, 8, Direction::Forward, o), Error);
}

TEST(Facade, OneDimensionalShapesRoute) {
  // 1D shapes route through the fft1d/large.h engines; ranks above 3 are
  // still rejected.
  FftOptions o;
  o.engine = EngineKind::DoubleBuffer;
  o.threads = 1;
  auto engine = make_engine({64}, Direction::Forward, o);
  auto x = random_cvec(64, 9400);
  cvec want(x.size());
  reference_dft_1d(x.data(), want.data(), 64, Direction::Forward);
  cvec in = x, got(x.size());
  engine->execute(in.data(), got.data());
  EXPECT_LT(max_err(want, got), fft_tol(64.0));
  EXPECT_THROW(make_engine({2, 2, 2, 2}, Direction::Forward, {}), Error);
}

}  // namespace
}  // namespace bwfft
