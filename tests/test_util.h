// Shared helpers for the bwfft test suite.
#pragma once

#include <gtest/gtest.h>

#include <cmath>

#include "common/aligned.h"
#include "common/rng.h"
#include "common/types.h"

namespace bwfft::test {

/// Max |a-b| over two complex vectors (sizes must match).
inline double max_err(const cvec& a, const cvec& b) {
  EXPECT_EQ(a.size(), b.size());
  double worst = 0.0;
  for (std::size_t i = 0; i < a.size() && i < b.size(); ++i) {
    worst = std::max(worst, std::abs(a[i] - b[i]));
  }
  return worst;
}

/// Error tolerance scaled to transform size: FFT round-off grows ~log n
/// and values grow ~sqrt(n) for unit-magnitude inputs.
inline double fft_tol(double n_total) {
  return 1e-12 * std::max(1.0, std::sqrt(n_total) * std::log2(n_total + 1));
}

}  // namespace bwfft::test
