// Tests for the STREAM bandwidth substrate.
#include <gtest/gtest.h>

#include "stream/stream.h"

namespace bwfft {
namespace {

TEST(Stream, ReportsPositiveBandwidths) {
  // Small arrays so the test is quick; rates are then cache rates, which
  // is fine — we only check the plumbing, not the absolute numbers.
  auto r = run_stream(1 << 16, 2, 2);
  EXPECT_GT(r.copy_gbs, 0.0);
  EXPECT_GT(r.scale_gbs, 0.0);
  EXPECT_GT(r.add_gbs, 0.0);
  EXPECT_GT(r.triad_gbs, 0.0);
  EXPECT_EQ(r.best(), r.triad_gbs);
}

TEST(Stream, SingleThreadWorks) {
  auto r = run_stream(1 << 14, 1, 1);
  EXPECT_GT(r.triad_gbs, 0.0);
}

TEST(Stream, MeasuredBandwidthIsCachedAndPositive) {
  const double a = measured_stream_bandwidth_gbs();
  const double b = measured_stream_bandwidth_gbs();
  EXPECT_GT(a, 0.0);
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace bwfft
