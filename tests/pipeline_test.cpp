// Tests for the double-buffer software pipeline: data integrity under the
// Table II schedule, schedule-shape validation (prologue/steady/epilogue),
// equivalence of pipelined and unpipelined execution, and role handling.
#include <gtest/gtest.h>

#include <cstring>
#include <map>

#include "common/rng.h"
#include "pipeline/pipeline.h"
#include "test_util.h"

namespace bwfft {
namespace {

using test::max_err;
using Kind = DoubleBufferPipeline::TraceEvent::Kind;

/// A stage that loads blocks of `block` elements from `src`, multiplies
/// by 2, and stores to `dst` — simple enough to verify exactly, shaped
/// like the real FFT stages (block load / in-place compute / store).
struct CopyStageFixture {
  cvec src, dst;
  idx_t block;
  PipelineStage stage;

  CopyStageFixture(idx_t total, idx_t block_elems)
      : src(random_cvec(total, 1234)),
        dst(static_cast<std::size_t>(total), cplx(0, 0)),
        block(block_elems) {
    stage.iterations = total / block;
    stage.load = [this](idx_t i, cplx* buf, int rank, int parts) {
      auto [b, e] = ThreadTeam::chunk(block, parts, rank);
      std::memcpy(buf + b, src.data() + i * block + b,
                  static_cast<std::size_t>(e - b) * sizeof(cplx));
    };
    stage.compute = [this](idx_t, cplx* buf, int rank, int parts) {
      auto [b, e] = ThreadTeam::chunk(block, parts, rank);
      for (idx_t j = b; j < e; ++j) buf[j] *= 2.0;
    };
    stage.store = [this](idx_t i, const cplx* buf, int rank, int parts) {
      auto [b, e] = ThreadTeam::chunk(block, parts, rank);
      std::memcpy(dst.data() + i * block + b, buf + b,
                  static_cast<std::size_t>(e - b) * sizeof(cplx));
    };
  }

  void expect_correct() const {
    for (std::size_t j = 0; j < src.size(); ++j) {
      ASSERT_EQ(src[j] * 2.0, dst[j]) << "element " << j;
    }
  }
};

class PipelineThreads : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(PipelineThreads, DataIntegrityAcrossRoleSplits) {
  const auto [threads, compute] = GetParam();
  ThreadTeam team(threads);
  RolePlan roles = make_role_plan(threads, compute, host_topology());
  DoubleBufferPipeline pipe(team, roles, 64);
  CopyStageFixture fx(1024, 64);
  pipe.execute(fx.stage);
  fx.expect_correct();
}

INSTANTIATE_TEST_SUITE_P(RoleSplits, PipelineThreads,
                         ::testing::Values(std::tuple<int, int>{1, 1},
                                           std::tuple<int, int>{2, 1},
                                           std::tuple<int, int>{4, 2},
                                           std::tuple<int, int>{4, 3},
                                           std::tuple<int, int>{4, 1},
                                           std::tuple<int, int>{6, 3},
                                           std::tuple<int, int>{3, 3},
                                           std::tuple<int, int>{2, 2}));

TEST(Pipeline, UnpipelinedMatchesPipelined) {
  ThreadTeam team(4);
  RolePlan roles = make_role_plan(4, 2, host_topology());
  DoubleBufferPipeline pipe(team, roles, 32);

  CopyStageFixture a(512, 32);
  pipe.execute(a.stage);
  CopyStageFixture b(512, 32);
  pipe.execute_unpipelined(b.stage);
  EXPECT_EQ(0.0, max_err(a.dst, b.dst));
  a.expect_correct();
  b.expect_correct();
}

TEST(Pipeline, SingleIterationDegenerate) {
  ThreadTeam team(2);
  RolePlan roles = make_role_plan(2, 1, host_topology());
  DoubleBufferPipeline pipe(team, roles, 128);
  CopyStageFixture fx(128, 128);  // exactly one block
  pipe.execute(fx.stage);
  fx.expect_correct();
}

// Validate the Table II schedule: with one data and one compute thread,
// the trace must show the prologue (loads 0,1 before any store), steady
// state (store i-2 with load i at the same step), and epilogue.
TEST(Pipeline, TraceMatchesTableII) {
  ThreadTeam team(2);
  RolePlan roles = make_role_plan(2, 1, host_topology());
  DoubleBufferPipeline pipe(team, roles, 16);
  CopyStageFixture fx(16 * 6, 16);  // 6 iterations
  std::vector<DoubleBufferPipeline::TraceEvent> trace;
  pipe.set_trace(&trace);
  pipe.execute(fx.stage);
  pipe.set_trace(nullptr);
  fx.expect_correct();

  std::map<idx_t, std::vector<std::pair<Kind, idx_t>>> by_step;
  for (const auto& ev : trace) by_step[ev.step].push_back({ev.kind, ev.iter});

  const idx_t iters = 6;
  for (idx_t step = 0; step < iters + 2; ++step) {
    ASSERT_TRUE(by_step.count(step)) << "no events at step " << step;
    bool has_load = false, has_store = false, has_compute = false;
    for (auto [kind, iter] : by_step[step]) {
      if (kind == Kind::Load) {
        has_load = true;
        EXPECT_EQ(step, iter);
      }
      if (kind == Kind::Store) {
        has_store = true;
        EXPECT_EQ(step - 2, iter);
      }
      if (kind == Kind::Compute) {
        has_compute = true;
        EXPECT_EQ(step - 1, iter);
      }
    }
    EXPECT_EQ(step < iters, has_load) << "step " << step;          // prologue+steady
    EXPECT_EQ(step >= 2, has_store) << "step " << step;            // steady+epilogue
    EXPECT_EQ(step >= 1 && step <= iters, has_compute) << "step " << step;
  }

  // Halves alternate: load of iteration i uses half i mod 2.
  for (const auto& ev : trace) {
    if (ev.kind == Kind::Load || ev.kind == Kind::Store) {
      EXPECT_EQ(static_cast<int>(ev.iter % 2), ev.half);
    } else {
      EXPECT_EQ(static_cast<int>(ev.iter % 2), ev.half);
    }
  }
}

TEST(Pipeline, ManyIterationsStress) {
  ThreadTeam team(4);
  RolePlan roles = make_role_plan(4, 2, host_topology());
  DoubleBufferPipeline pipe(team, roles, 8);
  CopyStageFixture fx(8 * 200, 8);  // 200 iterations
  pipe.execute(fx.stage);
  fx.expect_correct();
}

TEST(Pipeline, UtilizationCollection) {
  ThreadTeam team(2);
  RolePlan roles = make_role_plan(2, 1, host_topology());
  DoubleBufferPipeline pipe(team, roles, 64);
  pipe.set_collect_utilization(true);
  CopyStageFixture fx(1024, 64);
  pipe.execute(fx.stage);
  fx.expect_correct();
  const auto& u = pipe.last_utilization();
  EXPECT_GT(u.wall_seconds, 0.0);
  EXPECT_GT(u.load_seconds, 0.0);
  EXPECT_GT(u.store_seconds, 0.0);
  EXPECT_GT(u.compute_seconds, 0.0);
  // Busy time per role cannot exceed its group's wall-clock allocation
  // (1 thread per role here).
  EXPECT_LE(u.load_seconds + u.store_seconds, u.wall_seconds * 1.5);
  EXPECT_LE(u.compute_seconds, u.wall_seconds * 1.5);
  pipe.set_collect_utilization(false);
}

TEST(Pipeline, RejectsEmptyStage) {
  ThreadTeam team(2);
  RolePlan roles = make_role_plan(2, 1, host_topology());
  DoubleBufferPipeline pipe(team, roles, 8);
  PipelineStage s;
  s.iterations = 0;
  EXPECT_THROW(pipe.execute(s), Error);
}

TEST(Pipeline, DefaultBlockPolicyIsQuarterLlc) {
  MachineTopology t = machines::kabylake_7700k();  // 8 MiB LLC
  // Buffer = LLC/2 split into two halves => per-half block = LLC/4.
  EXPECT_EQ(static_cast<idx_t>((8u << 20) / 4 / sizeof(cplx)),
            default_block_elems(t));
}

}  // namespace
}  // namespace bwfft
