// Gap-closing tests: out-of-place 1D API, twiddle diagonal content,
// topology helpers, assertion machinery, inverse-direction lowering.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/topology.h"
#include "fft/reference.h"
#include "fft1d/fft1d.h"
#include "spl/expr.h"
#include "spl/lower.h"
#include "test_util.h"

namespace bwfft {
namespace {

using test::fft_tol;
using test::max_err;

TEST(Misc, ApplyOutOfPlacePreservesInput) {
  const idx_t n = 64;
  auto x = random_cvec(n, 9500);
  const cvec saved = x;
  Fft1d plan(n, Direction::Forward);
  cvec out(x.size());
  plan.apply_oop(x.data(), out.data());
  EXPECT_EQ(0.0, max_err(saved, x));  // input untouched
  cvec want(x.size());
  reference_dft_1d(x.data(), want.data(), n, Direction::Forward);
  EXPECT_LT(max_err(want, out), fft_tol(64.0));
}

TEST(Misc, TwiddleDiagMatchesDefinition) {
  // D_n^{mn} entry (i, j) = w_{mn}^{i j}.
  const idx_t m = 3, n = 4;
  auto d = spl::twiddle_diag(m, n);
  auto dense_d = spl::dense(*d);
  for (idx_t i = 0; i < m; ++i) {
    for (idx_t j = 0; j < n; ++j) {
      const cplx want = root_of_unity(m * n, (i * j) % (m * n),
                                      Direction::Forward);
      EXPECT_NEAR(0.0,
                  std::abs(dense_d[static_cast<std::size_t>(i * n + j)]
                                  [static_cast<std::size_t>(i * n + j)] -
                           want),
                  1e-15);
    }
  }
}

TEST(Misc, TopologyHelpers) {
  auto t = machines::haswell_2667v3();
  EXPECT_EQ(8, t.threads_per_socket());
  EXPECT_EQ(16, t.total_threads());
  auto amd = machines::amd_fx8350();
  EXPECT_EQ(1, amd.smt_per_core);
  EXPECT_EQ(8, amd.threads_per_socket());
}

TEST(Misc, CheckMacroThrowsWithContext) {
  try {
    BWFFT_CHECK(1 == 2, "the message");
    FAIL() << "should have thrown";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(std::string::npos, what.find("the message"));
    EXPECT_NE(std::string::npos, what.find("misc_test.cpp"));
  }
}

TEST(Misc, LowerInverseDirection) {
  auto term = spl::kron(spl::identity(4), spl::dft(8, Direction::Inverse));
  auto prog = spl::lower(*term);
  auto x = random_cvec(32, 9501);
  auto want = (*term)(x);
  auto got = prog.run(x);
  EXPECT_LT(max_err(want, got), fft_tol(32.0));
}

TEST(Misc, StockhamHandlesOddAndEvenLog2) {
  // Radix-4 schedule with (even log2) and without (odd log2) the trailing
  // radix-2 level must both be exact.
  for (idx_t n : {64, 128, 512, 2048}) {  // log2 = 6,7,9,11
    Fft1d plan(n, Direction::Forward);
    auto x = random_cvec(n, 9600 + n);
    cvec want(x.size());
    reference_dft_1d(x.data(), want.data(), n, Direction::Forward);
    cvec got = x;
    plan.apply_batch(got.data(), 1);
    EXPECT_LT(max_err(want, got), fft_tol(static_cast<double>(n))) << n;
  }
}

}  // namespace
}  // namespace bwfft
