// parallel::TeamPool — persistent shared thread teams ("teams never
// respawned"). Covers keyed reuse, concurrent acquire convergence, the
// run() serialisation that makes shared teams safe, and engines
// attaching to one pooled team via FftOptions::team_pool.
#include "parallel/team_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "fft/fft.h"
#include "fft/reference.h"
#include "../test_util.h"

namespace bwfft::parallel {
namespace {

using test::fft_tol;
using test::max_err;

TEST(TeamPool, SameKeyReturnsTheSameTeam) {
  TeamPool pool;
  auto a = pool.acquire(2);
  auto b = pool.acquire(2);
  EXPECT_EQ(a.get(), b.get());
  EXPECT_EQ(2, a->size());
  const TeamPool::Stats s = pool.stats();
  EXPECT_EQ(1u, s.spawned);
  EXPECT_EQ(1u, s.reused);
  EXPECT_EQ(1u, s.teams);
}

TEST(TeamPool, SizeAndPinListAreTheKey) {
  TeamPool pool;
  auto a = pool.acquire(2);
  auto b = pool.acquire(1);
  auto c = pool.acquire(1, {0});  // same size, pinned: a different team
  EXPECT_NE(a.get(), b.get());
  EXPECT_NE(b.get(), c.get());
  EXPECT_EQ(3u, pool.stats().teams);
  EXPECT_EQ(b.get(), pool.acquire(1).get());
  EXPECT_EQ(c.get(), pool.acquire(1, {0}).get());
}

TEST(TeamPool, ClearDropsTeamsButLiveReferencesStayUsable) {
  TeamPool pool;
  auto a = pool.acquire(2);
  pool.clear();
  EXPECT_EQ(0u, pool.stats().teams);
  // The cleared team is still alive through our shared_ptr.
  std::atomic<int> hits{0};
  a->run([&](int) { hits.fetch_add(1); });
  EXPECT_EQ(2, hits.load());
  // A later acquire spawns afresh rather than resurrecting the old team.
  auto b = pool.acquire(2);
  EXPECT_NE(a.get(), b.get());
  EXPECT_EQ(2u, pool.stats().spawned);
}

TEST(TeamPool, ConcurrentAcquiresConvergeOnOneTeam) {
  constexpr int kCallers = 8;
  TeamPool pool;
  std::vector<std::thread> threads;
  std::vector<ThreadTeam*> got(kCallers, nullptr);
  std::vector<std::shared_ptr<ThreadTeam>> keep(kCallers);
  for (int t = 0; t < kCallers; ++t) {
    threads.emplace_back([&, t] {
      keep[static_cast<std::size_t>(t)] = pool.acquire(2);
      got[static_cast<std::size_t>(t)] =
          keep[static_cast<std::size_t>(t)].get();
    });
  }
  for (auto& t : threads) t.join();
  for (int t = 1; t < kCallers; ++t) {
    EXPECT_EQ(got[0], got[static_cast<std::size_t>(t)]) << "caller " << t;
  }
  const TeamPool::Stats s = pool.stats();
  // Racing spawns may build a duplicate, but the loser's team is
  // discarded: the pool never holds more than one team per key.
  EXPECT_EQ(1u, s.teams);
  EXPECT_EQ(static_cast<std::uint64_t>(kCallers), s.spawned + s.reused);
}

TEST(TeamPool, SharedTeamSerialisesConcurrentRuns) {
  TeamPool pool;
  auto team = pool.acquire(2);
  constexpr int kCallers = 4;
  constexpr int kRunsEach = 25;
  std::atomic<int> inside{0};
  std::atomic<int> overlap{0};
  std::atomic<int> hits{0};
  std::vector<std::thread> callers;
  for (int c = 0; c < kCallers; ++c) {
    callers.emplace_back([&] {
      for (int i = 0; i < kRunsEach; ++i) {
        team->run([&](int) {
          // Workers of ONE job overlap (that is the point of a team);
          // two *jobs* must never interleave, so the worker count inside
          // a job can never exceed the team size.
          const int now = inside.fetch_add(1) + 1;
          if (now > team->size()) overlap.fetch_add(1);
          hits.fetch_add(1);
          inside.fetch_sub(1);
        });
      }
    });
  }
  for (auto& t : callers) t.join();
  EXPECT_EQ(0, overlap.load()) << "two run() jobs interleaved on one team";
  EXPECT_EQ(kCallers * kRunsEach * team->size(), hits.load());
}

TEST(TeamPool, MakeTeamPooledSharesPrivateDoesNot) {
  const TeamPool::Stats before = TeamPool::global().stats();
  auto pooled1 = make_team(2, {}, /*pooled=*/true);
  auto pooled2 = make_team(2, {}, /*pooled=*/true);
  EXPECT_EQ(pooled1.get(), pooled2.get());
  auto priv1 = make_team(2, {}, /*pooled=*/false);
  auto priv2 = make_team(2, {}, /*pooled=*/false);
  EXPECT_NE(priv1.get(), priv2.get());
  EXPECT_NE(pooled1.get(), priv1.get());
  const TeamPool::Stats after = TeamPool::global().stats();
  // Only the pooled acquires touched the global pool (delta-based: other
  // tests in this binary may have populated it already).
  EXPECT_GE(after.reused, before.reused + 1);
}

TEST(TeamPool, EnginesWithTeamPoolOptionShareOneTeam) {
  const idx_t n = 8, m = 16;
  auto x = random_cvec(n * m, 7401);
  cvec want(x.size());
  reference_dft_2d(x.data(), want.data(), n, m, Direction::Forward);

  FftOptions o;
  o.threads = 2;
  o.pin_threads = false;  // key "p2:" regardless of host core count
  o.team_pool = true;
  const TeamPool::Stats before = TeamPool::global().stats();
  Fft2d p1(n, m, Direction::Forward, o);
  Fft2d p2(n, m, Direction::Forward, o);
  const TeamPool::Stats after = TeamPool::global().stats();
  // Two plans, at most one spawn for this key — the second attached to
  // the pooled team.
  EXPECT_LE(after.spawned, before.spawned + 1);
  EXPECT_GE(after.reused, before.reused + 1);

  // Both plans produce correct results through the shared team.
  cvec in1 = x, out1(x.size()), in2 = x, out2(x.size());
  p1.execute(in1.data(), out1.data());
  p2.execute(in2.data(), out2.data());
  EXPECT_LT(max_err(want, out1), fft_tol(static_cast<double>(n * m)));
  EXPECT_LT(max_err(want, out2), fft_tol(static_cast<double>(n * m)));
}

}  // namespace
}  // namespace bwfft::parallel
