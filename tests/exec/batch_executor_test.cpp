// BatchExecutor — the persistent serving layer. Covers correctness of
// served transforms (vs the reference DFT), concurrent producers (the
// test CI runs under TSan), same-shape coalescing, queue-full
// backpressure, deadline expiry, graceful shutdown, and continued
// service through an injected worker-lost fault.
#include "exec/batch_executor.h"

#include <gtest/gtest.h>

#include <chrono>
#include <future>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "fault/fault.h"
#include "fft/reference.h"
#include "parallel/team_pool.h"
#include "../test_util.h"

namespace bwfft::exec {
namespace {

using namespace std::chrono_literals;
using test::fft_tol;
using test::max_err;

/// One request's buffers plus the reference answer, kept alive until the
/// future resolves (the executor borrows in/out, it does not own them).
struct Case {
  std::vector<idx_t> dims;
  Direction dir = Direction::Forward;
  cvec in, out, want;

  Case(std::vector<idx_t> d, Direction dr, unsigned seed) : dims(std::move(d)), dir(dr) {
    idx_t total = 1;
    for (idx_t n : dims) total *= n;
    in = random_cvec(total, seed);
    out.assign(in.size(), cplx{-7.0, -7.0});  // sentinel: untouched on reject
    want.resize(in.size());
    if (dims.size() == 1) {
      reference_dft_1d(in.data(), want.data(), dims[0], dir);
    } else if (dims.size() == 2) {
      reference_dft_2d(in.data(), want.data(), dims[0], dims[1], dir);
    } else {
      reference_dft_3d(in.data(), want.data(), dims[0], dims[1], dims[2], dir);
    }
  }

  Request request(Clock::time_point deadline = {}) {
    return Request{dims, dir, in.data(), out.data(), deadline};
  }

  void expect_correct() const {
    EXPECT_LT(max_err(want, out), fft_tol(static_cast<double>(want.size())));
  }
  void expect_untouched() const {
    for (const cplx& c : out) {
      ASSERT_EQ(cplx(-7.0, -7.0), c) << "rejected request ran anyway";
    }
  }
};

TEST(BatchExecutor, ServesSingle2dRequest) {
  BatchExecutor ex;
  Case c({8, 16}, Direction::Forward, 7001);
  ExecReport rep = ex.submit(c.request()).get();
  ASSERT_TRUE(rep.status.ok()) << rep.status.str();
  c.expect_correct();
  const ExecStats s = ex.stats();
  EXPECT_EQ(1u, s.submitted);
  EXPECT_EQ(1u, s.completed);
  EXPECT_EQ(0u, s.failed);
  EXPECT_EQ(1u, s.end_to_end.count);
  EXPECT_EQ(1u, s.queue_wait.count);
}

TEST(BatchExecutor, ServesSingle1dRequest) {
  // 1D shapes route through the large-1D adapters (docs/INTERNALS.md
  // §15) like any other rank — same queue, same plan cache.
  BatchExecutor ex;
  Case c({idx_t{1} << 12}, Direction::Forward, 7010);
  ExecReport rep = ex.submit(c.request()).get();
  ASSERT_TRUE(rep.status.ok()) << rep.status.str();
  c.expect_correct();
}

TEST(BatchExecutor, ServesSingle3dRequestBothDirections) {
  BatchExecutor ex;
  Case fwd({4, 8, 8}, Direction::Forward, 7002);
  Case inv({4, 8, 8}, Direction::Inverse, 7003);
  auto f1 = ex.submit(fwd.request());
  auto f2 = ex.submit(inv.request());
  EXPECT_TRUE(f1.get().status.ok());
  EXPECT_TRUE(f2.get().status.ok());
  fwd.expect_correct();
  inv.expect_correct();
}

TEST(BatchExecutor, ExecuteManyMixedShapes) {
  BatchExecutor ex;
  std::vector<Case> cases;
  cases.emplace_back(std::vector<idx_t>{8, 8}, Direction::Forward, 7010);
  cases.emplace_back(std::vector<idx_t>{4, 4, 4}, Direction::Forward, 7011);
  cases.emplace_back(std::vector<idx_t>{8, 8}, Direction::Inverse, 7012);
  cases.emplace_back(std::vector<idx_t>{16, 8}, Direction::Forward, 7013);
  cases.emplace_back(std::vector<idx_t>{4, 4, 4}, Direction::Forward, 7014);

  std::vector<Request> reqs;
  for (Case& c : cases) reqs.push_back(c.request());
  std::vector<ExecReport> reports;
  const Status st = ex.execute_many(std::move(reqs), &reports);
  ASSERT_TRUE(st.ok()) << st.str();
  ASSERT_EQ(cases.size(), reports.size());
  for (std::size_t i = 0; i < cases.size(); ++i) {
    EXPECT_TRUE(reports[i].status.ok()) << i << ": " << reports[i].status.str();
    cases[i].expect_correct();
  }
  EXPECT_EQ(cases.size(), ex.stats().completed);
}

// The TSan headline test: N producer threads hammer one executor with
// mixed 2D/3D shapes and verify every result against the reference DFT.
TEST(BatchExecutor, ConcurrentProducersMixedShapes) {
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 6;
  BatchExecutor ex;

  std::vector<std::thread> producers;
  std::vector<int> failures(kProducers, 0);
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      const std::vector<std::vector<idx_t>> shapes = {
          {8, 8}, {4, 4, 4}, {16, 8}, {2, 4, 8}};
      for (int i = 0; i < kPerProducer; ++i) {
        Case c(shapes[static_cast<std::size_t>(i) % shapes.size()],
               i % 2 ? Direction::Inverse : Direction::Forward,
               static_cast<unsigned>(7100 + p * 100 + i));
        ExecReport rep = ex.submit(c.request()).get();
        const double err = test::max_err(c.want, c.out);
        if (!rep.status.ok() ||
            err >= fft_tol(static_cast<double>(c.want.size()))) {
          ++failures[static_cast<std::size_t>(p)];
        }
      }
    });
  }
  for (auto& t : producers) t.join();
  for (int p = 0; p < kProducers; ++p) {
    EXPECT_EQ(0, failures[static_cast<std::size_t>(p)]) << "producer " << p;
  }
  const ExecStats s = ex.stats();
  EXPECT_EQ(static_cast<std::uint64_t>(kProducers * kPerProducer), s.submitted);
  EXPECT_EQ(static_cast<std::uint64_t>(kProducers * kPerProducer), s.completed);
  EXPECT_EQ(0u, s.failed);
}

TEST(BatchExecutor, CoalescesSameShapeRequestsIntoOneBatch) {
  ServeOptions o;
  o.start_paused = true;  // queue everything before the dispatcher runs
  BatchExecutor ex(o);
  std::vector<Case> cases;
  std::vector<std::future<ExecReport>> futures;
  for (int i = 0; i < 6; ++i) {
    cases.emplace_back(std::vector<idx_t>{8, 8}, Direction::Forward,
                       static_cast<unsigned>(7200 + i));
  }
  for (Case& c : cases) futures.push_back(ex.submit(c.request()));
  ex.resume();
  for (auto& f : futures) EXPECT_TRUE(f.get().status.ok());
  for (const Case& c : cases) c.expect_correct();

  const ExecStats s = ex.stats();
  EXPECT_EQ(1u, s.batches) << "six queued same-shape requests must coalesce";
  EXPECT_EQ(6u, s.batched_requests);
  EXPECT_EQ(6u, s.max_batch_occupancy);
  EXPECT_DOUBLE_EQ(6.0, s.batch_occupancy());
  EXPECT_GE(s.peak_queue_depth, 6u);
}

TEST(BatchExecutor, MaxBatchBoundsOneDispatchSweep) {
  ServeOptions o;
  o.start_paused = true;
  o.max_batch = 2;
  BatchExecutor ex(o);
  std::vector<Case> cases;
  std::vector<std::future<ExecReport>> futures;
  for (int i = 0; i < 6; ++i) {
    cases.emplace_back(std::vector<idx_t>{8, 8}, Direction::Forward,
                       static_cast<unsigned>(7250 + i));
  }
  for (Case& c : cases) futures.push_back(ex.submit(c.request()));
  ex.resume();
  for (auto& f : futures) EXPECT_TRUE(f.get().status.ok());
  const ExecStats s = ex.stats();
  EXPECT_GE(s.batches, 3u);  // 6 requests, <= 2 per sweep
  EXPECT_LE(s.max_batch_occupancy, 2u);
}

TEST(BatchExecutor, FullQueueRejectsWithQueueFull) {
  ServeOptions o;
  o.start_paused = true;
  o.queue_capacity = 2;
  BatchExecutor ex(o);
  Case a({8, 8}, Direction::Forward, 7301);
  Case b({8, 8}, Direction::Forward, 7302);
  Case rejected({8, 8}, Direction::Forward, 7303);
  auto fa = ex.submit(a.request());
  auto fb = ex.submit(b.request());
  auto fr = ex.submit(rejected.request());
  // The rejection is immediate (no deadline => no waiting for space).
  ASSERT_EQ(std::future_status::ready, fr.wait_for(0s));
  ExecReport rep = fr.get();
  EXPECT_EQ(ErrorCode::kQueueFull, rep.status.code()) << rep.status.str();
  rejected.expect_untouched();
  {
    const ExecStats s = ex.stats();
    EXPECT_EQ(2u, s.submitted);
    EXPECT_EQ(1u, s.rejected_full);
  }
  // Backpressure is about the queue, not the service: the accepted
  // requests complete once the dispatcher resumes.
  ex.resume();
  EXPECT_TRUE(fa.get().status.ok());
  EXPECT_TRUE(fb.get().status.ok());
  a.expect_correct();
  b.expect_correct();
}

TEST(BatchExecutor, DeadlineBoundsTheWaitForQueueSpace) {
  ServeOptions o;
  o.start_paused = true;
  o.queue_capacity = 1;
  BatchExecutor ex(o);
  Case a({8, 8}, Direction::Forward, 7310);
  Case late({8, 8}, Direction::Forward, 7311);
  auto fa = ex.submit(a.request());
  const auto t0 = Clock::now();
  ExecReport rep = ex.submit(late.request(t0 + 40ms)).get();
  EXPECT_GE(Clock::now() - t0, 40ms) << "deadline submit must wait for space";
  EXPECT_EQ(ErrorCode::kQueueFull, rep.status.code()) << rep.status.str();
  late.expect_untouched();
  ex.resume();
  EXPECT_TRUE(fa.get().status.ok());
}

TEST(BatchExecutor, DeadlineAlreadyExpiredRejectsOnSubmit) {
  BatchExecutor ex;
  Case c({8, 8}, Direction::Forward, 7320);
  auto fut = ex.submit(c.request(Clock::now() - 1ms));
  ASSERT_EQ(std::future_status::ready, fut.wait_for(0s));
  ExecReport rep = fut.get();
  EXPECT_EQ(ErrorCode::kTimeout, rep.status.code()) << rep.status.str();
  c.expect_untouched();
  EXPECT_EQ(1u, ex.stats().timed_out);
  EXPECT_EQ(0u, ex.stats().submitted);
}

TEST(BatchExecutor, DeadlineExpiryWhileQueuedCompletesWithTimeout) {
  ServeOptions o;
  o.start_paused = true;
  BatchExecutor ex(o);
  Case c({8, 8}, Direction::Forward, 7330);
  auto fut = ex.submit(c.request(Clock::now() + 30ms));
  std::this_thread::sleep_for(80ms);  // deadline passes while queued
  ex.resume();
  ExecReport rep = fut.get();
  EXPECT_EQ(ErrorCode::kTimeout, rep.status.code()) << rep.status.str();
  c.expect_untouched();
  const ExecStats s = ex.stats();
  EXPECT_EQ(1u, s.timed_out);
  EXPECT_EQ(0u, s.completed);
  EXPECT_EQ(0u, s.failed) << "a timeout is not an execution failure";
}

TEST(BatchExecutor, ShutdownDrainsQueuedRequestsThenRejectsNewOnes) {
  ServeOptions o;
  o.start_paused = true;
  auto ex = std::make_unique<BatchExecutor>(o);
  Case a({8, 8}, Direction::Forward, 7340);
  Case b({4, 4, 4}, Direction::Forward, 7341);
  auto fa = ex->submit(a.request());
  auto fb = ex->submit(b.request());
  // shutdown() on a paused executor still drains the backlog before the
  // dispatcher exits — queued callers are never abandoned.
  ex->shutdown();
  EXPECT_TRUE(fa.get().status.ok());
  EXPECT_TRUE(fb.get().status.ok());
  a.expect_correct();
  b.expect_correct();

  Case late({8, 8}, Direction::Forward, 7342);
  ExecReport rep = ex->submit(late.request()).get();
  EXPECT_EQ(ErrorCode::kQueueFull, rep.status.code());
  EXPECT_NE(std::string::npos, rep.status.message().find("shut down"));
  late.expect_untouched();
  ex->shutdown();  // idempotent
  ex.reset();      // destructor after explicit shutdown
}

TEST(BatchExecutor, BadShapeFailsThatRequestNotTheService) {
  BatchExecutor ex;
  // 2 entries required per dim >= 1; a zero dim is a kBadPlan at
  // construction, which must come back through the future, not throw in
  // the dispatcher.
  cvec buf(4);
  Request bad;
  bad.dims = {0, 4};
  bad.in = buf.data();
  bad.out = buf.data();
  ExecReport rep = ex.submit(std::move(bad)).get();
  EXPECT_FALSE(rep.status.ok());
  EXPECT_EQ(1u, ex.stats().failed);
  // The service keeps serving.
  Case c({8, 8}, Direction::Forward, 7350);
  EXPECT_TRUE(ex.submit(c.request()).get().status.ok());
  c.expect_correct();
}

// The ISSUE's resilience requirement: a fault-injected worker-lost run
// must degrade that plan and keep the service alive.
TEST(BatchExecutor, WorkerLostFaultDegradesPlanButServiceContinues) {
  fault::clear();
  fault::reset_stats();
  BatchExecutor ex;  // persistent team spawns before the fault is armed

  // Drop the pooled teams so the next plan build must spawn fresh ones —
  // and arm a persistent spawn failure. The recovering builder inside
  // CachedPlan degrades the plan down to the reference engine.
  parallel::TeamPool::global().clear();
  std::string err;
  ASSERT_TRUE(fault::set_plan_from_spec("spawn.thread:*", &err)) << err;

  Case degraded({16, 4}, Direction::Forward, 7360);
  ExecReport rep = ex.submit(degraded.request()).get();
  EXPECT_TRUE(rep.status.ok()) << rep.status.str();
  degraded.expect_correct();
  EXPECT_GE(fault::fired_count(fault::kSiteSpawnThread), 1u);
  EXPECT_STREQ("reference", rep.engine.c_str());

  // Same shape after the fault clears: the sticky degraded plan still
  // serves from the cache.
  fault::clear();
  Case again({16, 4}, Direction::Forward, 7361);
  EXPECT_TRUE(ex.submit(again.request()).get().status.ok());
  again.expect_correct();

  // A new shape plans with healthy spawns again: full service restored.
  Case fresh({4, 16}, Direction::Forward, 7362);
  EXPECT_TRUE(ex.submit(fresh.request()).get().status.ok());
  fresh.expect_correct();

  const ExecStats s = ex.stats();
  EXPECT_EQ(3u, s.completed);
  EXPECT_EQ(0u, s.failed);
  fault::reset_stats();
}

// Satellite (c) of ISSUE-9: a paused executor accumulates a
// mixed-priority backlog; on resume it must drain in the documented
// LaneQueue order — interactive first, one batch item woven in after
// every `batch_starvation_limit` interactive pops. max_batch = 1 makes
// the completion order equal the pop order (no coalescing reorder), and
// a sky-high CoDel target keeps shedding out of the picture.
TEST(BatchExecutor, PausedMixedBacklogDrainsInDocumentedLaneOrder) {
  ServeOptions o;
  o.start_paused = true;
  o.max_batch = 1;
  o.admission.batch_starvation_limit = 2;
  o.admission.codel_target = std::chrono::seconds(10);
  BatchExecutor ex(o);

  std::vector<Case> cases;
  for (int i = 0; i < 8; ++i) {
    cases.emplace_back(std::vector<idx_t>{8, 8}, Direction::Forward,
                       static_cast<unsigned>(7400 + i));
  }
  std::vector<std::future<ExecReport>> futures;
  // Batch submits land first; interactive still drains ahead of them.
  for (int i = 0; i < 3; ++i) {
    Request r = cases[static_cast<std::size_t>(i)].request();
    r.lane = Lane::kBatch;
    futures.push_back(ex.submit(std::move(r)));
  }
  for (int i = 3; i < 8; ++i) {
    futures.push_back(ex.submit(cases[static_cast<std::size_t>(i)].request()));
  }
  ex.resume();
  for (auto& f : futures) EXPECT_TRUE(f.get().status.ok());
  for (const Case& c : cases) c.expect_correct();

  const ExecStats s = ex.stats();
  EXPECT_EQ(5u, s.submitted_by_lane[0]);
  EXPECT_EQ(3u, s.submitted_by_lane[1]);
  EXPECT_EQ(5u, s.completed_by_lane[0]);
  EXPECT_EQ(3u, s.completed_by_lane[1]);
  ASSERT_EQ(8u, s.completion_order.size());
  std::string order;
  for (int lane : s.completion_order) {
    order += lane == static_cast<int>(Lane::kInteractive) ? 'I' : 'B';
  }
  EXPECT_EQ("IIBIIBIB", order) << "anti-starvation weave (limit=2)";
}

TEST(LatencyHistogram, QuantilesBracketAddedSamples) {
  LatencyHistogram h;
  EXPECT_EQ(0u, h.quantile_ns(0.5));
  h.add(1);            // bucket 0: [1, 2)
  h.add(1u << 20);     // bucket 20
  EXPECT_EQ(2u, h.count);
  EXPECT_EQ(1u, h.quantile_ns(0.5));
  EXPECT_EQ((1u << 21) - 1, h.quantile_ns(1.0));
  for (int i = 0; i < 98; ++i) h.add(1u << 10);
  // p50 now falls in the 2^10 bucket; p99+ still sees the outlier.
  EXPECT_EQ((1u << 11) - 1, h.quantile_ns(0.5));
  EXPECT_EQ((1u << 21) - 1, h.quantile_ns(0.999));
}

}  // namespace
}  // namespace bwfft::exec
