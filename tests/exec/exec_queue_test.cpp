// BoundedQueue — the exec service's MPMC submission channel.
#include "exec/queue.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <numeric>
#include <thread>
#include <vector>

namespace bwfft::exec {
namespace {

using namespace std::chrono_literals;

TEST(BoundedQueue, FifoOrderAndCapacity) {
  BoundedQueue<int> q(3);
  EXPECT_EQ(3u, q.capacity());
  EXPECT_TRUE(q.try_push(1));
  EXPECT_TRUE(q.try_push(2));
  EXPECT_TRUE(q.try_push(3));
  EXPECT_EQ(3u, q.size());
  EXPECT_FALSE(q.try_push(4)) << "push into a full queue must bounce";
  EXPECT_EQ(1, q.pop().value());
  EXPECT_TRUE(q.try_push(4)) << "pop must free a slot";
  EXPECT_EQ(2, q.pop().value());
  EXPECT_EQ(3, q.pop().value());
  EXPECT_EQ(4, q.pop().value());
  EXPECT_EQ(0u, q.size());
}

TEST(BoundedQueue, TryPopEmptyReturnsNothing) {
  BoundedQueue<int> q(2);
  EXPECT_FALSE(q.try_pop().has_value());
  q.try_push(7);
  EXPECT_EQ(7, q.try_pop().value());
  EXPECT_FALSE(q.try_pop().has_value());
}

TEST(BoundedQueue, PushUntilTimesOutOnFullQueue) {
  BoundedQueue<int> q(1);
  ASSERT_TRUE(q.try_push(1));
  const auto t0 = std::chrono::steady_clock::now();
  EXPECT_FALSE(q.push_until(2, t0 + 20ms));
  EXPECT_GE(std::chrono::steady_clock::now() - t0, 20ms);
  // Space opening up lets a waiting push through.
  std::thread popper([&] {
    std::this_thread::sleep_for(10ms);
    q.pop();
  });
  EXPECT_TRUE(q.push_until(3, std::chrono::steady_clock::now() + 5s));
  popper.join();
  EXPECT_EQ(3, q.pop().value());
}

TEST(BoundedQueue, CloseDrainsThenSignalsShutdown) {
  BoundedQueue<int> q(4);
  q.try_push(1);
  q.try_push(2);
  q.close();
  EXPECT_FALSE(q.try_push(3)) << "closed queue rejects pushes";
  EXPECT_FALSE(q.push_wait(3)) << "even blocking ones";
  // Items queued before close stay poppable (graceful drain)...
  EXPECT_EQ(1, q.pop().value());
  EXPECT_EQ(2, q.pop().value());
  // ...and the drained, closed queue reports shutdown instead of blocking.
  EXPECT_FALSE(q.pop().has_value());
}

TEST(BoundedQueue, CloseWakesBlockedConsumers) {
  BoundedQueue<int> q(1);
  std::atomic<bool> woke{false};
  std::thread consumer([&] {
    EXPECT_FALSE(q.pop().has_value());
    woke = true;
  });
  std::this_thread::sleep_for(10ms);
  q.close();
  consumer.join();
  EXPECT_TRUE(woke);
}

TEST(BoundedQueue, ManyProducersManyConsumersConserveItems) {
  constexpr int kProducers = 4;
  constexpr int kConsumers = 3;
  constexpr int kPerProducer = 500;
  BoundedQueue<int> q(8);  // small: producers hit backpressure constantly

  std::vector<std::thread> threads;
  std::atomic<long long> consumed_sum{0};
  std::atomic<int> consumed_count{0};
  for (int c = 0; c < kConsumers; ++c) {
    threads.emplace_back([&] {
      while (auto v = q.pop()) {
        consumed_sum += *v;
        ++consumed_count;
      }
    });
  }
  for (int p = 0; p < kProducers; ++p) {
    threads.emplace_back([&, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        ASSERT_TRUE(q.push_wait(p * kPerProducer + i));
      }
    });
  }
  for (int t = kConsumers; t < kConsumers + kProducers; ++t) {
    threads[static_cast<std::size_t>(t)].join();
  }
  q.close();
  for (int t = 0; t < kConsumers; ++t) {
    threads[static_cast<std::size_t>(t)].join();
  }

  const int total = kProducers * kPerProducer;
  EXPECT_EQ(total, consumed_count.load());
  long long want = 0;
  for (int i = 0; i < total; ++i) want += i;
  EXPECT_EQ(want, consumed_sum.load());
}

}  // namespace
}  // namespace bwfft::exec
