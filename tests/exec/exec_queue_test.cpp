// BoundedQueue / LaneQueue — the exec service's MPMC submission channels.
#include "exec/queue.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <numeric>
#include <thread>
#include <vector>

namespace bwfft::exec {
namespace {

using namespace std::chrono_literals;

TEST(BoundedQueue, FifoOrderAndCapacity) {
  BoundedQueue<int> q(3);
  EXPECT_EQ(3u, q.capacity());
  EXPECT_EQ(PushResult::kAccepted, q.try_push(1));
  EXPECT_EQ(PushResult::kAccepted, q.try_push(2));
  EXPECT_EQ(PushResult::kAccepted, q.try_push(3));
  EXPECT_EQ(3u, q.size());
  EXPECT_EQ(PushResult::kFull, q.try_push(4))
      << "push into a full queue must bounce";
  EXPECT_EQ(1, q.pop().value());
  EXPECT_EQ(PushResult::kAccepted, q.try_push(4)) << "pop must free a slot";
  EXPECT_EQ(2, q.pop().value());
  EXPECT_EQ(3, q.pop().value());
  EXPECT_EQ(4, q.pop().value());
  EXPECT_EQ(0u, q.size());
}

TEST(BoundedQueue, TryPopEmptyReturnsNothing) {
  BoundedQueue<int> q(2);
  EXPECT_FALSE(q.try_pop().has_value());
  q.try_push(7);
  EXPECT_EQ(7, q.try_pop().value());
  EXPECT_FALSE(q.try_pop().has_value());
}

TEST(BoundedQueue, PushUntilTimesOutOnFullQueue) {
  BoundedQueue<int> q(1);
  ASSERT_EQ(PushResult::kAccepted, q.try_push(1));
  const auto t0 = std::chrono::steady_clock::now();
  EXPECT_EQ(PushResult::kFull, q.push_until(2, t0 + 20ms));
  EXPECT_GE(std::chrono::steady_clock::now() - t0, 20ms);
  // Space opening up lets a waiting push through.
  std::thread popper([&] {
    std::this_thread::sleep_for(10ms);
    q.pop();
  });
  EXPECT_EQ(PushResult::kAccepted,
            q.push_until(3, std::chrono::steady_clock::now() + 5s));
  popper.join();
  EXPECT_EQ(3, q.pop().value());
}

TEST(BoundedQueue, CloseDrainsThenSignalsShutdown) {
  BoundedQueue<int> q(4);
  q.try_push(1);
  q.try_push(2);
  q.close();
  EXPECT_EQ(PushResult::kClosed, q.try_push(3))
      << "closed queue rejects pushes";
  EXPECT_EQ(PushResult::kClosed, q.push_wait(3)) << "even blocking ones";
  // Items queued before close stay poppable (graceful drain)...
  EXPECT_EQ(1, q.pop().value());
  EXPECT_EQ(2, q.pop().value());
  // ...and the drained, closed queue reports shutdown instead of blocking.
  EXPECT_FALSE(q.pop().has_value());
}

TEST(BoundedQueue, CloseWhilePushUntilWaitingReportsClosedNotTimeout) {
  // The ISSUE-9 race fix: a close that lands while push_until is parked
  // on a full queue must surface as kClosed, never as a spurious kFull —
  // the state at wake-up is decided under the lock. The closer fires
  // well before the (generous) deadline, so a kFull here can only mean
  // the conflated-timeout bug is back.
  BoundedQueue<int> q(1);
  ASSERT_EQ(PushResult::kAccepted, q.try_push(1));
  std::thread closer([&] {
    std::this_thread::sleep_for(10ms);
    q.close();
  });
  EXPECT_EQ(PushResult::kClosed,
            q.push_until(2, std::chrono::steady_clock::now() + 60s));
  closer.join();
  // Even after the deadline has genuinely passed, closed wins over full.
  EXPECT_EQ(PushResult::kClosed,
            q.push_until(3, std::chrono::steady_clock::now() - 1ms));
}

TEST(BoundedQueue, CloseWakesBlockedConsumers) {
  BoundedQueue<int> q(1);
  std::atomic<bool> woke{false};
  std::thread consumer([&] {
    EXPECT_FALSE(q.pop().has_value());
    woke = true;
  });
  std::this_thread::sleep_for(10ms);
  q.close();
  consumer.join();
  EXPECT_TRUE(woke);
}

TEST(BoundedQueue, ManyProducersManyConsumersConserveItems) {
  constexpr int kProducers = 4;
  constexpr int kConsumers = 3;
  constexpr int kPerProducer = 500;
  BoundedQueue<int> q(8);  // small: producers hit backpressure constantly

  std::vector<std::thread> threads;
  std::atomic<long long> consumed_sum{0};
  std::atomic<int> consumed_count{0};
  for (int c = 0; c < kConsumers; ++c) {
    threads.emplace_back([&] {
      while (auto v = q.pop()) {
        consumed_sum += *v;
        ++consumed_count;
      }
    });
  }
  for (int p = 0; p < kProducers; ++p) {
    threads.emplace_back([&, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        ASSERT_EQ(PushResult::kAccepted, q.push_wait(p * kPerProducer + i));
      }
    });
  }
  for (int t = kConsumers; t < kConsumers + kProducers; ++t) {
    threads[static_cast<std::size_t>(t)].join();
  }
  q.close();
  for (int t = 0; t < kConsumers; ++t) {
    threads[static_cast<std::size_t>(t)].join();
  }

  const int total = kProducers * kPerProducer;
  EXPECT_EQ(total, consumed_count.load());
  long long want = 0;
  for (int i = 0; i < total; ++i) want += i;
  EXPECT_EQ(want, consumed_sum.load());
}

// ---------------------------------------------------------------------------
// LaneQueue

TEST(LaneQueue, InteractiveDrainsFirst) {
  LaneQueue<int> q(8, 0, 100);  // starvation limit high: pure priority
  q.try_push(Lane::kBatch, 100);
  q.try_push(Lane::kBatch, 101);
  q.try_push(Lane::kInteractive, 1);
  q.try_push(Lane::kInteractive, 2);
  EXPECT_EQ(1, q.pop().value());
  EXPECT_EQ(2, q.pop().value());
  EXPECT_EQ(100, q.pop().value());
  EXPECT_EQ(101, q.pop().value());
}

TEST(LaneQueue, AntiStarvationWeavesBatchItems) {
  // limit = 2: after two consecutive interactive pops one batch item is
  // drained. With 5 interactive + 3 batch queued the documented order is
  // I I B I I B I B.
  LaneQueue<char> q(16, 0, 2);
  for (int i = 0; i < 5; ++i) q.try_push(Lane::kInteractive, 'I');
  for (int i = 0; i < 3; ++i) q.try_push(Lane::kBatch, 'B');
  std::string order;
  while (auto v = q.try_pop()) order += *v;
  EXPECT_EQ("IIBIIBIB", order);
}

TEST(LaneQueue, InteractiveReserveKeepsBatchOut) {
  // capacity 4, reserve 2: batch may hold at most 2 slots; interactive
  // may fill the whole queue.
  LaneQueue<int> q(4, 2, 2);
  EXPECT_EQ(PushResult::kAccepted, q.try_push(Lane::kBatch, 1));
  EXPECT_EQ(PushResult::kAccepted, q.try_push(Lane::kBatch, 2));
  EXPECT_EQ(PushResult::kFull, q.try_push(Lane::kBatch, 3))
      << "batch must not take the reserved slots";
  EXPECT_EQ(PushResult::kAccepted, q.try_push(Lane::kInteractive, 4));
  EXPECT_EQ(PushResult::kAccepted, q.try_push(Lane::kInteractive, 5));
  EXPECT_EQ(PushResult::kFull, q.try_push(Lane::kInteractive, 6))
      << "the shared capacity still bounds interactive";
  EXPECT_EQ(4u, q.size());
  EXPECT_EQ(2u, q.size(Lane::kBatch));
  EXPECT_EQ(2u, q.size(Lane::kInteractive));
}

TEST(LaneQueue, RequeueBypassesCapacityButNotClose) {
  LaneQueue<int> q(1, 0, 2);
  ASSERT_EQ(PushResult::kAccepted, q.try_push(Lane::kInteractive, 1));
  EXPECT_EQ(PushResult::kFull, q.try_push(Lane::kInteractive, 2));
  // A retry re-enters a full queue (it must not be lost to backpressure).
  EXPECT_TRUE(q.requeue(Lane::kInteractive, 2));
  EXPECT_EQ(2u, q.size());
  q.close();
  EXPECT_FALSE(q.requeue(Lane::kInteractive, 3))
      << "retries do not survive shutdown";
  EXPECT_EQ(1, q.pop().value());
  EXPECT_EQ(2, q.pop().value());
  EXPECT_FALSE(q.pop().has_value());
}

TEST(LaneQueue, PushUntilCloseRaceReportsClosed) {
  LaneQueue<int> q(1, 0, 2);
  ASSERT_EQ(PushResult::kAccepted, q.try_push(Lane::kBatch, 1));
  std::thread closer([&] {
    std::this_thread::sleep_for(10ms);
    q.close();
  });
  EXPECT_EQ(PushResult::kClosed,
            q.push_until(Lane::kBatch, 2, Clock::now() + 60s));
  closer.join();
}

TEST(LaneQueue, CloseDrainsBothLanes) {
  LaneQueue<int> q(4, 0, 2);
  q.try_push(Lane::kBatch, 10);
  q.try_push(Lane::kInteractive, 1);
  q.close();
  EXPECT_EQ(PushResult::kClosed, q.try_push(Lane::kInteractive, 2));
  EXPECT_EQ(1, q.pop().value());
  EXPECT_EQ(10, q.pop().value());
  EXPECT_FALSE(q.pop().has_value());
}

}  // namespace
}  // namespace bwfft::exec
