// Admission layer — token buckets, CoDel shedding, retry backoff and
// the watchdog drift test. Every control law here is time-fed by the
// caller, so the tests drive them with synthetic steady-clock
// nanoseconds and zero sleeps.
#include "exec/admission.h"

#include <gtest/gtest.h>

#include <chrono>
#include <set>

namespace bwfft::exec {
namespace {

using namespace std::chrono_literals;

constexpr std::uint64_t kMs = 1'000'000;  // ns per millisecond

TEST(TokenBucket, BurstThenDryThenRefill) {
  TokenBucket b(/*rate_per_sec=*/10.0, /*burst=*/3.0, /*now_ns=*/0);
  // The full burst is available instantly.
  EXPECT_TRUE(b.try_acquire(0));
  EXPECT_TRUE(b.try_acquire(0));
  EXPECT_TRUE(b.try_acquire(0));
  EXPECT_FALSE(b.try_acquire(0)) << "burst exhausted";
  // 10 tokens/s => one token every 100ms. 50ms in: still dry.
  EXPECT_FALSE(b.try_acquire(50 * kMs));
  // 100ms in: exactly one token has dripped back.
  EXPECT_TRUE(b.try_acquire(100 * kMs));
  EXPECT_FALSE(b.try_acquire(100 * kMs));
}

TEST(TokenBucket, RefillCapsAtBurst) {
  TokenBucket b(1000.0, 2.0, 0);
  EXPECT_TRUE(b.try_acquire(0));
  EXPECT_TRUE(b.try_acquire(0));
  // A long idle period refills to the cap, not beyond it.
  const std::uint64_t later = 3600ULL * 1'000'000'000ULL;
  EXPECT_TRUE(b.try_acquire(later));
  EXPECT_TRUE(b.try_acquire(later));
  EXPECT_FALSE(b.try_acquire(later)) << "burst is the ceiling";
}

TEST(TokenBucket, TimeGoingBackwardsDoesNotRefill) {
  TokenBucket b(1000.0, 1.0, 100 * kMs);
  EXPECT_TRUE(b.try_acquire(100 * kMs));
  // A caller feeding a stale timestamp must not mint tokens.
  EXPECT_FALSE(b.try_acquire(50 * kMs));
}

TEST(AdmissionController, QuotaRateZeroAdmitsEveryone) {
  AdmissionOptions o;  // quota_rate = 0
  AdmissionController ac(o);
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(ac.admit("greedy", 0).ok());
  }
}

TEST(AdmissionController, TenantsAreIsolated) {
  AdmissionOptions o;
  o.quota_rate = 1.0;
  o.quota_burst = 2.0;
  AdmissionController ac(o);
  EXPECT_TRUE(ac.admit("a", 0).ok());
  EXPECT_TRUE(ac.admit("a", 0).ok());
  const Status rejected = ac.admit("a", 0);
  EXPECT_EQ(ErrorCode::kQuotaExceeded, rejected.code());
  EXPECT_NE(std::string::npos, rejected.message().find("'a'"))
      << "the rejection names the tenant: " << rejected.str();
  // Tenant b has its own bucket, untouched by a's burst.
  EXPECT_TRUE(ac.admit("b", 0).ok());
  EXPECT_TRUE(ac.admit("b", 0).ok());
  EXPECT_EQ(ErrorCode::kQuotaExceeded, ac.admit("b", 0).code());
  // a recovers after a second (rate = 1/s).
  EXPECT_TRUE(ac.admit("a", 1'000 * kMs).ok());
}

TEST(CoDel, ShortBurstDrainsWithoutShedding) {
  CoDelState codel(50ms, 100ms);
  // Sojourn above target, but the delay recovers before a full interval
  // elapses: no request is shed.
  EXPECT_FALSE(codel.should_shed(0, 60 * kMs));        // arms the timer
  EXPECT_FALSE(codel.should_shed(50 * kMs, 70 * kMs)); // still in grace
  EXPECT_FALSE(codel.should_shed(90 * kMs, 10 * kMs)); // recovered: disarm
  EXPECT_FALSE(codel.should_shed(200 * kMs, 60 * kMs)) << "timer re-arms";
  EXPECT_FALSE(codel.dropping());
  EXPECT_EQ(0u, codel.drop_count());
}

TEST(CoDel, StandingQueueTriggersSheddingAfterInterval) {
  CoDelState codel(50ms, 100ms);
  EXPECT_FALSE(codel.should_shed(0, 60 * kMs));          // arm at t=0
  EXPECT_FALSE(codel.should_shed(99 * kMs, 80 * kMs));   // interval not up
  EXPECT_TRUE(codel.should_shed(100 * kMs, 80 * kMs))    // interval up: shed
      << "a full interval above target starts dropping";
  EXPECT_TRUE(codel.dropping());
  EXPECT_EQ(1u, codel.drop_count());
}

TEST(CoDel, ControlLawTightensAsSqrtCount) {
  CoDelState codel(50ms, 100ms);
  ASSERT_FALSE(codel.should_shed(0, 60 * kMs));
  ASSERT_TRUE(codel.should_shed(100 * kMs, 80 * kMs));  // drop 1 at t=100
  // Next drop is scheduled interval/sqrt(1) = 100ms later (t=200).
  EXPECT_FALSE(codel.should_shed(150 * kMs, 80 * kMs));
  EXPECT_TRUE(codel.should_shed(200 * kMs, 80 * kMs));
  EXPECT_EQ(2u, codel.drop_count());
  // Then interval/sqrt(2) ~ 70.7ms later (t ~ 270.7).
  EXPECT_FALSE(codel.should_shed(265 * kMs, 80 * kMs));
  EXPECT_TRUE(codel.should_shed(271 * kMs, 80 * kMs));
  EXPECT_EQ(3u, codel.drop_count());
  // Recovery exits the dropping state and resets the machinery.
  EXPECT_FALSE(codel.should_shed(300 * kMs, 5 * kMs));
  EXPECT_FALSE(codel.dropping());
}

TEST(RetryBackoff, ExponentialFromBaseCappedAtMax) {
  RetryPolicy p;
  p.base_backoff = 10ms;
  p.max_backoff = 55ms;
  // Attempt 2 (first retry): base .. 1.5*base with jitter in [0, b/2].
  const auto b2 = retry_backoff(p, 2, 42);
  EXPECT_GE(b2, 10ms);
  EXPECT_LE(b2, 15ms);
  const auto b3 = retry_backoff(p, 3, 42);  // 20ms + jitter
  EXPECT_GE(b3, 20ms);
  EXPECT_LE(b3, 30ms);
  // Attempt 5 would be 80ms: capped at max (jitter applies to the cap).
  const auto b5 = retry_backoff(p, 5, 42);
  EXPECT_GE(b5, 55ms);
  EXPECT_LE(b5, 82500us);
  // A huge attempt number must not overflow the shift.
  const auto b99 = retry_backoff(p, 99, 42);
  EXPECT_GE(b99, 55ms);
  EXPECT_LE(b99, 82500us);
}

TEST(RetryBackoff, DeterministicPerSeedDecorrelatedAcrossSeeds) {
  RetryPolicy p;
  p.base_backoff = 10ms;
  p.max_backoff = 100ms;
  EXPECT_EQ(retry_backoff(p, 2, 7), retry_backoff(p, 2, 7))
      << "same seed, same schedule — reproducible tests";
  std::set<std::chrono::nanoseconds::rep> seen;
  for (std::uint64_t seed = 0; seed < 16; ++seed) {
    seen.insert(retry_backoff(p, 2, seed).count());
  }
  EXPECT_GT(seen.size(), 4u) << "jitter must decorrelate seeds";
}

TEST(RetryBackoff, ZeroBaseMeansZeroSleep) {
  RetryPolicy p;
  p.base_backoff = 0ns;
  for (int attempt = 2; attempt < 8; ++attempt) {
    EXPECT_EQ(0ns, retry_backoff(p, attempt, 123u + attempt));
  }
}

TEST(LatencyDrift, FiresOnlyAboveFactorTimesBaseline) {
  LatencyHistogram h;
  EXPECT_FALSE(latency_drift(h, 1000, 8.0)) << "empty histogram never drifts";
  for (int i = 0; i < 100; ++i) h.add(1000);
  EXPECT_FALSE(latency_drift(h, 0, 8.0)) << "no baseline, no drift";
  EXPECT_FALSE(latency_drift(h, 1000, 8.0)) << "p99 ~ baseline";
  // Shift the tail: p99 lands in the 2^17 bucket (~131us), far above
  // 8 * 1000ns.
  for (int i = 0; i < 100; ++i) h.add(100'000);
  EXPECT_TRUE(latency_drift(h, 1000, 8.0));
  EXPECT_FALSE(latency_drift(h, 1000, 1'000'000.0))
      << "a generous factor tolerates the same tail";
}

}  // namespace
}  // namespace bwfft::exec
