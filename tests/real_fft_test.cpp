// Tests for the real-to-complex 1D transform.
#include <gtest/gtest.h>

#include <random>

#include "fft/reference.h"
#include "fft1d/real.h"
#include "test_util.h"

namespace bwfft {
namespace {

using test::fft_tol;

dvec random_real(idx_t n, std::uint64_t seed) {
  std::mt19937_64 gen(seed);
  std::uniform_real_distribution<double> d(-1, 1);
  dvec v(static_cast<std::size_t>(n));
  for (auto& x : v) x = d(gen);
  return v;
}

class RealFftSizes : public ::testing::TestWithParam<idx_t> {};

TEST_P(RealFftSizes, ForwardMatchesComplexReference) {
  const idx_t n = GetParam();
  auto x = random_real(n, 8000 + n);
  cvec cx(static_cast<std::size_t>(n));
  for (idx_t j = 0; j < n; ++j) cx[static_cast<std::size_t>(j)] = cplx(x[static_cast<std::size_t>(j)], 0);
  cvec want(cx.size());
  reference_dft_1d(cx.data(), want.data(), n, Direction::Forward);

  RealFft1d plan(n);
  cvec half(static_cast<std::size_t>(plan.spectrum_size()));
  plan.forward(x.data(), half.data());
  for (idx_t k = 0; k <= n / 2; ++k) {
    EXPECT_NEAR(0.0,
                std::abs(half[static_cast<std::size_t>(k)] -
                         want[static_cast<std::size_t>(k)]),
                fft_tol(static_cast<double>(n)))
        << "n=" << n << " k=" << k;
  }
}

TEST_P(RealFftSizes, RoundTrip) {
  const idx_t n = GetParam();
  auto x = random_real(n, 8100 + n);
  RealFft1d plan(n);
  cvec half(static_cast<std::size_t>(plan.spectrum_size()));
  plan.forward(x.data(), half.data());
  dvec back(static_cast<std::size_t>(n));
  plan.inverse(half.data(), back.data(), /*normalize=*/true);
  for (idx_t j = 0; j < n; ++j) {
    EXPECT_NEAR(x[static_cast<std::size_t>(j)], back[static_cast<std::size_t>(j)],
                fft_tol(static_cast<double>(n)));
  }
}

TEST_P(RealFftSizes, UnnormalizedInverseIsNTimesInput) {
  const idx_t n = GetParam();
  auto x = random_real(n, 8200 + n);
  RealFft1d plan(n);
  cvec half(static_cast<std::size_t>(plan.spectrum_size()));
  plan.forward(x.data(), half.data());
  dvec back(static_cast<std::size_t>(n));
  plan.inverse(half.data(), back.data(), /*normalize=*/false);
  for (idx_t j = 0; j < n; ++j) {
    EXPECT_NEAR(static_cast<double>(n) * x[static_cast<std::size_t>(j)],
                back[static_cast<std::size_t>(j)], fft_tol(static_cast<double>(n)) * n);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, RealFftSizes,
                         ::testing::Values<idx_t>(2, 4, 8, 6, 10, 16, 64, 100,
                                                  256, 1024));

TEST(RealFft, EdgeBinsAreReal) {
  const idx_t n = 32;
  auto x = random_real(n, 8300);
  RealFft1d plan(n);
  cvec half(static_cast<std::size_t>(plan.spectrum_size()));
  plan.forward(x.data(), half.data());
  EXPECT_NEAR(0.0, half[0].imag(), 1e-12);                     // DC
  EXPECT_NEAR(0.0, half[static_cast<std::size_t>(n / 2)].imag(), 1e-12);  // Nyquist
}

TEST(RealFft, RejectsOddSizes) {
  EXPECT_THROW(RealFft1d(7), Error);
  EXPECT_THROW(RealFft1d(1), Error);
}

}  // namespace
}  // namespace bwfft
