// Integration tests: every multidimensional engine against the dense
// reference oracle, across shapes, directions and thread configurations.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "fft/fft.h"
#include "fft/reference.h"
#include "test_util.h"

namespace bwfft {
namespace {

using test::fft_tol;
using test::max_err;

FftOptions small_opts(EngineKind engine, int threads = 2) {
  FftOptions o;
  o.engine = engine;
  o.threads = threads;
  o.block_elems = 512;  // small buffer => several pipeline iterations
  return o;
}

struct EngineCase {
  EngineKind engine;
  int threads;
};

std::string engine_case_name(
    const ::testing::TestParamInfo<EngineCase>& info) {
  std::string s = engine_name(info.param.engine);
  for (auto& c : s) {
    if (c == '-') c = '_';
  }
  return s + "_t" + std::to_string(info.param.threads);
}

class Engines3d : public ::testing::TestWithParam<EngineCase> {};

TEST_P(Engines3d, MatchesReferenceForward) {
  const auto p = GetParam();
  const idx_t k = 8, n = 4, m = 16;
  auto x = random_cvec(k * n * m, 1000);
  cvec want(x.size());
  reference_dft_3d(x.data(), want.data(), k, n, m, Direction::Forward);

  Fft3d plan(k, n, m, Direction::Forward, small_opts(p.engine, p.threads));
  cvec in = x, got(x.size());
  plan.execute(in.data(), got.data());
  EXPECT_LT(max_err(want, got), fft_tol(static_cast<double>(k * n * m)));
}

TEST_P(Engines3d, MatchesReferenceInverse) {
  const auto p = GetParam();
  const idx_t k = 4, n = 8, m = 8;
  auto x = random_cvec(k * n * m, 1001);
  cvec want(x.size());
  reference_dft_3d(x.data(), want.data(), k, n, m, Direction::Inverse);

  Fft3d plan(k, n, m, Direction::Inverse, small_opts(p.engine, p.threads));
  cvec in = x, got(x.size());
  plan.execute(in.data(), got.data());
  EXPECT_LT(max_err(want, got), fft_tol(static_cast<double>(k * n * m)));
}

TEST_P(Engines3d, RoundTripRestoresInput) {
  const auto p = GetParam();
  const idx_t k = 4, n = 4, m = 8;
  auto x = random_cvec(k * n * m, 1002);
  auto opts = small_opts(p.engine, p.threads);
  Fft3d fwd(k, n, m, Direction::Forward, opts);
  opts.normalize_inverse = true;
  Fft3d inv(k, n, m, Direction::Inverse, opts);
  cvec a = x, b(x.size()), c(x.size());
  fwd.execute(a.data(), b.data());
  inv.execute(b.data(), c.data());
  EXPECT_LT(max_err(x, c), fft_tol(static_cast<double>(k * n * m)));
}

INSTANTIATE_TEST_SUITE_P(
    AllEngines, Engines3d,
    ::testing::Values(EngineCase{EngineKind::Pencil, 1},
                      EngineCase{EngineKind::Pencil, 3},
                      EngineCase{EngineKind::StageParallel, 1},
                      EngineCase{EngineKind::StageParallel, 4},
                      EngineCase{EngineKind::SlabPencil, 1},
                      EngineCase{EngineKind::SlabPencil, 4},
                      EngineCase{EngineKind::DoubleBuffer, 1},
                      EngineCase{EngineKind::DoubleBuffer, 2},
                      EngineCase{EngineKind::DoubleBuffer, 4},
                      EngineCase{EngineKind::DoubleBuffer, 6}),
    engine_case_name);

class Engines2d : public ::testing::TestWithParam<EngineCase> {};

TEST_P(Engines2d, MatchesReferenceForward) {
  const auto p = GetParam();
  const idx_t n = 16, m = 32;
  auto x = random_cvec(n * m, 2000);
  cvec want(x.size());
  reference_dft_2d(x.data(), want.data(), n, m, Direction::Forward);

  Fft2d plan(n, m, Direction::Forward, small_opts(p.engine, p.threads));
  cvec in = x, got(x.size());
  plan.execute(in.data(), got.data());
  EXPECT_LT(max_err(want, got), fft_tol(static_cast<double>(n * m)));
}

TEST_P(Engines2d, InputPreservationNotRequired) {
  // Engines may clobber `in`; the API contract only fixes `out`.
  const auto p = GetParam();
  const idx_t n = 8, m = 16;
  auto x = random_cvec(n * m, 2001);
  cvec want(x.size());
  reference_dft_2d(x.data(), want.data(), n, m, Direction::Forward);
  Fft2d plan(n, m, Direction::Forward, small_opts(p.engine, p.threads));
  cvec in = x, got(x.size());
  plan.execute(in.data(), got.data());
  EXPECT_LT(max_err(want, got), fft_tol(static_cast<double>(n * m)));
}

INSTANTIATE_TEST_SUITE_P(
    AllEngines, Engines2d,
    ::testing::Values(EngineCase{EngineKind::Pencil, 1},
                      EngineCase{EngineKind::Pencil, 2},
                      EngineCase{EngineKind::StageParallel, 3},
                      EngineCase{EngineKind::DoubleBuffer, 1},
                      EngineCase{EngineKind::DoubleBuffer, 2},
                      EngineCase{EngineKind::DoubleBuffer, 4}),
    engine_case_name);

// Shape sweep for the core engine: asymmetric cubes in every orientation.
class DoubleBufferShapes
    : public ::testing::TestWithParam<std::tuple<idx_t, idx_t, idx_t>> {};

TEST_P(DoubleBufferShapes, MatchesReference) {
  const auto [k, n, m] = GetParam();
  auto x = random_cvec(k * n * m, 3000 + k + n + m);
  cvec want(x.size());
  reference_dft_3d(x.data(), want.data(), k, n, m, Direction::Forward);
  Fft3d plan(k, n, m, Direction::Forward,
             small_opts(EngineKind::DoubleBuffer, 4));
  cvec in = x, got(x.size());
  plan.execute(in.data(), got.data());
  EXPECT_LT(max_err(want, got), fft_tol(static_cast<double>(k * n * m)))
      << k << "x" << n << "x" << m;
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, DoubleBufferShapes,
    ::testing::ValuesIn(std::vector<std::tuple<idx_t, idx_t, idx_t>>{
        {4, 4, 4},
        {2, 8, 16},
        {16, 8, 2},
        {8, 2, 32},
        {32, 4, 8},
        {2, 2, 4},
        {16, 16, 16}}));

// Analytic case: a 3D impulse transforms to the all-ones cube.
TEST(Engines3dAnalytic, ImpulseGivesConstant) {
  const idx_t k = 4, n = 4, m = 8;
  cvec x(static_cast<std::size_t>(k * n * m), cplx(0, 0));
  x[0] = cplx(1, 0);
  Fft3d plan(k, n, m, Direction::Forward,
             small_opts(EngineKind::DoubleBuffer, 2));
  cvec got(x.size());
  plan.execute(x.data(), got.data());
  for (const auto& v : got) {
    EXPECT_NEAR(1.0, v.real(), 1e-10);
    EXPECT_NEAR(0.0, v.imag(), 1e-10);
  }
}

// Plane-wave input concentrates on a single output bin.
TEST(Engines3dAnalytic, PlaneWaveGivesDelta) {
  const idx_t k = 4, n = 8, m = 8;
  const idx_t fz = 1, fy = 3, fx = 5;
  cvec x(static_cast<std::size_t>(k * n * m));
  for (idx_t z = 0; z < k; ++z) {
    for (idx_t y = 0; y < n; ++y) {
      for (idx_t xx = 0; xx < m; ++xx) {
        const double ph = 2.0 * 3.14159265358979323846 *
                          (static_cast<double>(fz * z) / k +
                           static_cast<double>(fy * y) / n +
                           static_cast<double>(fx * xx) / m);
        x[static_cast<std::size_t>(z * n * m + y * m + xx)] =
            cplx(std::cos(ph), std::sin(ph));
      }
    }
  }
  Fft3d plan(k, n, m, Direction::Forward,
             small_opts(EngineKind::DoubleBuffer, 2));
  cvec got(x.size());
  plan.execute(x.data(), got.data());
  const idx_t hot = fz * n * m + fy * m + fx;
  for (idx_t i = 0; i < k * n * m; ++i) {
    const double mag = std::abs(got[static_cast<std::size_t>(i)]);
    if (i == hot) {
      EXPECT_NEAR(static_cast<double>(k * n * m), mag, 1e-8);
    } else {
      EXPECT_NEAR(0.0, mag, 1e-8) << i;
    }
  }
}

TEST(EngineErrors, RejectsBadConfigs) {
  EXPECT_THROW(Fft3d(0, 4, 4, Direction::Forward, {}), Error);
  FftOptions o;
  o.engine = EngineKind::SlabPencil;
  EXPECT_THROW(Fft2d(4, 4, Direction::Forward, o), Error);  // 3D only
  o.engine = EngineKind::Pencil;
  EXPECT_THROW(Fft2d(6, 4, Direction::Forward, o), Error);  // non-pow2
}

}  // namespace
}  // namespace bwfft
