// Property-based and configuration-equivalence tests for the engines:
// mathematical DFT properties on the core engine, equality of results
// across every ablation configuration (non-temporal, packet size, scalar
// kernels, buffer size, thread counts), plan reuse, and non-power-of-two
// support via the mixed-radix/Bluestein kernel paths.
#include <gtest/gtest.h>

#include <random>

#include "common/rng.h"
#include "fft/double_buffer.h"
#include "fft/fft.h"
#include "fft/reference.h"
#include "fft/stage.h"
#include "kernels/vecops.h"
#include "test_util.h"

namespace bwfft {
namespace {

using test::fft_tol;
using test::max_err;

cvec run_3d(idx_t k, idx_t n, idx_t m, const FftOptions& o, const cvec& x,
            Direction dir = Direction::Forward) {
  Fft3d plan(k, n, m, dir, o);
  cvec in = x, out(x.size());
  plan.execute(in.data(), out.data());
  return out;
}

FftOptions base_opts() {
  FftOptions o;
  o.threads = 2;
  o.block_elems = 1024;
  return o;
}

TEST(EngineProperties, Parseval3d) {
  const idx_t k = 8, n = 8, m = 16;
  auto x = random_cvec(k * n * m, 7000);
  double in_energy = 0.0;
  for (const auto& v : x) in_energy += std::norm(v);
  auto y = run_3d(k, n, m, base_opts(), x);
  double out_energy = 0.0;
  for (const auto& v : y) out_energy += std::norm(v);
  EXPECT_NEAR(in_energy, out_energy / static_cast<double>(k * n * m),
              1e-9 * in_energy);
}

TEST(EngineProperties, Linearity3d) {
  const idx_t k = 4, n = 8, m = 8;
  auto x = random_cvec(k * n * m, 7001);
  auto y = random_cvec(k * n * m, 7002);
  const cplx a(1.5, -0.25), b(-0.75, 2.0);
  cvec mix(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) mix[i] = a * x[i] + b * y[i];
  auto fx = run_3d(k, n, m, base_opts(), x);
  auto fy = run_3d(k, n, m, base_opts(), y);
  auto fmix = run_3d(k, n, m, base_opts(), mix);
  double err = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    err = std::max(err, std::abs(fmix[i] - (a * fx[i] + b * fy[i])));
  }
  EXPECT_LT(err, fft_tol(static_cast<double>(k * n * m)));
}

// Real input => Hermitian spectrum: X[-k] = conj(X[k]) in all dimensions.
TEST(EngineProperties, HermitianSymmetryForRealInput) {
  const idx_t k = 4, n = 8, m = 8;
  cvec x(static_cast<std::size_t>(k * n * m));
  std::mt19937_64 gen(7);
  std::uniform_real_distribution<double> d(-1, 1);
  for (auto& v : x) v = cplx(d(gen), 0.0);
  auto y = run_3d(k, n, m, base_opts(), x);
  for (idx_t z = 0; z < k; ++z) {
    for (idx_t yy = 0; yy < n; ++yy) {
      for (idx_t xx = 0; xx < m; ++xx) {
        const idx_t fwd = z * n * m + yy * m + xx;
        const idx_t neg = ((k - z) % k) * n * m + ((n - yy) % n) * m +
                          ((m - xx) % m);
        EXPECT_NEAR(0.0,
                    std::abs(y[static_cast<std::size_t>(fwd)] -
                             std::conj(y[static_cast<std::size_t>(neg)])),
                    fft_tol(256.0));
      }
    }
  }
}

// Every ablation configuration computes the same transform.
TEST(EngineEquivalence, ConfigurationsAgree) {
  const idx_t k = 8, n = 8, m = 16;
  auto x = random_cvec(k * n * m, 7100);
  auto want = run_3d(k, n, m, base_opts(), x);

  {
    FftOptions o = base_opts();
    o.nontemporal = false;
    EXPECT_LT(max_err(want, run_3d(k, n, m, o, x)), 1e-12) << "temporal";
  }
  {
    FftOptions o = base_opts();
    o.packet_elems = 1;  // element-wise rotation
    EXPECT_LT(max_err(want, run_3d(k, n, m, o, x)), 1e-12) << "mu=1";
  }
  {
    FftOptions o = base_opts();
    o.packet_elems = 2;
    EXPECT_LT(max_err(want, run_3d(k, n, m, o, x)), 1e-12) << "mu=2";
  }
  {
    set_force_scalar(true);
    FftOptions o = base_opts();
    auto got = run_3d(k, n, m, o, x);
    set_force_scalar(false);
    EXPECT_LT(max_err(want, got), fft_tol(1024.0)) << "scalar";
  }
  {
    FftOptions o = base_opts();
    o.block_elems = 128;  // many iterations
    EXPECT_LT(max_err(want, run_3d(k, n, m, o, x)), 1e-12) << "tiny block";
  }
  {
    FftOptions o = base_opts();
    o.block_elems = 1 << 20;  // single iteration per stage
    EXPECT_LT(max_err(want, run_3d(k, n, m, o, x)), 1e-12) << "huge block";
  }
  for (int threads : {1, 3, 5, 8}) {
    FftOptions o = base_opts();
    o.threads = threads;
    EXPECT_LT(max_err(want, run_3d(k, n, m, o, x)), 1e-14)
        << "threads=" << threads;
  }
  {
    FftOptions o = base_opts();
    o.threads = 4;
    o.pin_threads = true;  // pinning must not change results
    EXPECT_LT(max_err(want, run_3d(k, n, m, o, x)), 1e-12) << "pinned";
  }
}

// Non-power-of-two cubes run through the mixed-radix/Bluestein kernels.
class NonPow2Shapes
    : public ::testing::TestWithParam<std::tuple<idx_t, idx_t, idx_t>> {};

TEST_P(NonPow2Shapes, DoubleBufferMatchesReference) {
  const auto [k, n, m] = GetParam();
  auto x = random_cvec(k * n * m, 7200 + k + n + m);
  cvec want(x.size());
  reference_dft_3d(x.data(), want.data(), k, n, m, Direction::Forward);
  auto got = run_3d(k, n, m, base_opts(), x);
  EXPECT_LT(max_err(want, got), fft_tol(static_cast<double>(k * n * m)))
      << k << "x" << n << "x" << m;
}

TEST_P(NonPow2Shapes, StageParallelMatchesReference) {
  const auto [k, n, m] = GetParam();
  auto x = random_cvec(k * n * m, 7300 + k + n + m);
  cvec want(x.size());
  reference_dft_3d(x.data(), want.data(), k, n, m, Direction::Forward);
  FftOptions o = base_opts();
  o.engine = EngineKind::StageParallel;
  auto got = run_3d(k, n, m, o, x);
  EXPECT_LT(max_err(want, got), fft_tol(static_cast<double>(k * n * m)));
}

INSTANTIATE_TEST_SUITE_P(
    Smooth, NonPow2Shapes,
    ::testing::ValuesIn(std::vector<std::tuple<idx_t, idx_t, idx_t>>{
        {6, 10, 12},
        {3, 5, 6},
        {12, 6, 20},
        {5, 7, 9},      // odd fast dim => mu = 1 path
        {4, 4, 17},     // prime fast dim => Bluestein pencil kernel
    }));

TEST(EngineReuse, RepeatedExecutionsAreIdentical) {
  const idx_t k = 4, n = 8, m = 8;
  auto x = random_cvec(k * n * m, 7400);
  Fft3d plan(k, n, m, Direction::Forward, base_opts());
  cvec in1 = x, out1(x.size()), in2 = x, out2(x.size());
  plan.execute(in1.data(), out1.data());
  plan.execute(in2.data(), out2.data());
  EXPECT_EQ(0.0, max_err(out1, out2));
}

TEST(EngineReuse, MovedPlanStillWorks) {
  const idx_t n = 8, m = 16;
  auto x = random_cvec(n * m, 7500);
  cvec want(x.size());
  reference_dft_2d(x.data(), want.data(), n, m, Direction::Forward);
  Fft2d a(n, m, Direction::Forward, base_opts());
  Fft2d b = std::move(a);
  cvec in = x, out(x.size());
  b.execute(in.data(), out.data());
  EXPECT_LT(max_err(want, out), fft_tol(128.0));
}

TEST(EngineStats, StageStatsPopulated) {
  const idx_t k = 8, n = 8, m = 16;
  FftOptions o = base_opts();
  DoubleBufferEngine eng({k, n, m}, Direction::Forward, o);
  auto x = random_cvec(k * n * m, 7600);
  cvec out(x.size());
  eng.execute(x.data(), out.data());
  const auto& st = eng.last_stats();
  ASSERT_EQ(3u, st.size());
  idx_t covered = 0;
  for (const auto& s : st) {
    EXPECT_GE(s.seconds, 0.0);
    EXPECT_GE(s.iterations, 1);
    EXPECT_GE(s.block_rows, 1);
    covered += s.iterations * s.block_rows;
  }
  // Each stage covers all of its rows; total rows over 3 stages. The
  // auto packet width depends on the dispatched ISA, so derive it the
  // same way the engine does.
  const idx_t mu = resolve_packet_size(o.packet_elems, m);
  EXPECT_EQ(k * n + (m / mu) * k + n * (m / mu), covered);
}

// Seeded random shape/engine sweep — a lightweight fuzz of the planner.
TEST(EngineFuzz, RandomPow2ShapesAllEnginesAgree) {
  std::mt19937_64 gen(123);
  auto rand_dim = [&](idx_t max_log) {
    return idx_t{1} << (1 + gen() % max_log);
  };
  for (int trial = 0; trial < 12; ++trial) {
    const idx_t k = rand_dim(4), n = rand_dim(4), m = rand_dim(4);
    auto x = random_cvec(k * n * m, 7700 + trial);
    cvec want(x.size());
    reference_dft_3d(x.data(), want.data(), k, n, m, Direction::Forward);
    for (EngineKind e : {EngineKind::Pencil, EngineKind::StageParallel,
                         EngineKind::SlabPencil, EngineKind::DoubleBuffer}) {
      FftOptions o = base_opts();
      o.engine = e;
      o.threads = 1 + static_cast<int>(gen() % 4);
      auto got = run_3d(k, n, m, o, x);
      EXPECT_LT(max_err(want, got), fft_tol(static_cast<double>(k * n * m)))
          << engine_name(e) << " " << k << "x" << n << "x" << m;
    }
  }
}

}  // namespace
}  // namespace bwfft
