// Tests for Fft1dLarge, the tuned four-step engine for out-of-LLC 1D
// transforms (docs/INTERNALS.md §15). Large sizes are checked against the
// flat Stockham pass (itself dense-oracle-verified in fft1d_test); tiny
// sizes are cross-checked against the spl::dft1d_four_step specification
// the engine implements.
#include <gtest/gtest.h>

#include <utility>

#include "../test_util.h"
#include "common/error.h"
#include "common/rng.h"
#include "fft/reference.h"
#include "fft1d/fft1d.h"
#include "fft1d/large.h"
#include "spl/algorithms.h"

namespace bwfft {
namespace {

using test::fft_tol;
using test::max_err;

/// Oracle for sizes where the dense O(n^2) reference is unusable: one
/// flat Stockham / mixed-radix pass over the whole array.
cvec stockham_oracle(const cvec& x, Direction dir = Direction::Forward) {
  cvec want = x;
  Fft1d flat(static_cast<idx_t>(x.size()), dir);
  flat.apply_batch(want.data(), 1);
  return want;
}

FftOptions large_opts(int threads) {
  FftOptions o;
  o.threads = threads;
  return o;
}

class Fft1dLargeSizes : public ::testing::TestWithParam<int> {};

TEST_P(Fft1dLargeSizes, ForwardMatchesStockham) {
  const idx_t n = idx_t{1} << GetParam();
  auto x = random_cvec(n, 9500 + GetParam());
  const cvec want = stockham_oracle(x);
  Fft1dLarge plan(n, Direction::Forward, large_opts(1));
  EXPECT_GT(plan.factor_n1(), 1) << "expected a real split at n=" << n;
  EXPECT_EQ(n, plan.factor_n1() * plan.factor_n2());
  cvec in = x, got(x.size());
  plan.execute(in.data(), got.data());
  EXPECT_LT(max_err(want, got), fft_tol(static_cast<double>(n)))
      << "n=2^" << GetParam() << " n1=" << plan.factor_n1();
}

// 2^18 (LLC-resident) through 2^24 (the out-of-LLC regime the engine
// exists for). 2^24 is 268 MiB per array — still fine on CI runners.
INSTANTIATE_TEST_SUITE_P(Sweep, Fft1dLargeSizes,
                         ::testing::Values(18, 20, 22, 24));

TEST(Fft1dLarge, InverseRoundTripNormalized) {
  const idx_t n = idx_t{1} << 20;
  auto x = random_cvec(n, 9510);
  FftOptions io = large_opts(1);
  io.normalize_inverse = true;
  Fft1dLarge fwd(n, Direction::Forward, large_opts(1));
  Fft1dLarge inv(n, Direction::Inverse, io);
  cvec a = x, b(x.size()), c(x.size());
  fwd.execute(a.data(), b.data());
  inv.execute(b.data(), c.data());
  EXPECT_LT(max_err(x, c), fft_tol(static_cast<double>(n)));
}

TEST(Fft1dLarge, NonSquareRequestedFactorMatches) {
  // A deliberately skewed split (n1 = 64, n2 = 4096): the tuner's factor
  // axis must be free to pick shapes far from sqrt(n).
  const idx_t n = idx_t{1} << 18;
  FftOptions o = large_opts(1);
  o.factor_n1 = 64;
  Fft1dLarge plan(n, Direction::Forward, o);
  EXPECT_EQ(64, plan.factor_n1());
  EXPECT_EQ(n / 64, plan.factor_n2());
  auto x = random_cvec(n, 9520);
  const cvec want = stockham_oracle(x);
  cvec in = x, got(x.size());
  plan.execute(in.data(), got.data());
  EXPECT_LT(max_err(want, got), fft_tol(static_cast<double>(n)));
}

TEST(Fft1dLarge, OddRadixFactorizationMatches) {
  // n = 3 * 2^16: neither factor axis is forced to a power of two — the
  // default split and a requested odd n1 both have to work.
  const idx_t n = 3 * (idx_t{1} << 16);
  auto x = random_cvec(n, 9530);
  const cvec want = stockham_oracle(x);
  for (idx_t req : {idx_t{0}, idx_t{3 * 64}}) {
    FftOptions o = large_opts(1);
    o.factor_n1 = req;
    Fft1dLarge plan(n, Direction::Forward, o);
    EXPECT_EQ(n, plan.factor_n1() * plan.factor_n2());
    if (req > 0) EXPECT_EQ(req, plan.factor_n1());
    cvec in = x, got(x.size());
    plan.execute(in.data(), got.data());
    EXPECT_LT(max_err(want, got), fft_tol(static_cast<double>(n)))
        << "requested n1=" << req;
  }
}

TEST(Fft1dLarge, MultiThreadedPipelineMatches) {
  // The TSan target: both tiled passes pipeline load/compute/store
  // across a pinned team. Any missing hand-off fence shows up here.
  const idx_t n = idx_t{1} << 20;
  auto x = random_cvec(n, 9540);
  const cvec want = stockham_oracle(x);
  for (int threads : {2, 4}) {
    Fft1dLarge plan(n, Direction::Forward, large_opts(threads));
    cvec in = x, got(x.size());
    plan.execute(in.data(), got.data());
    EXPECT_LT(max_err(want, got), fft_tol(static_cast<double>(n)))
        << "threads=" << threads;
  }
}

TEST(Fft1dLarge, TinySizesMatchFourStepSpec) {
  // The engine IS the spl::dft1d_four_step rewrite; at dense-checkable
  // sizes its output must match the specification matrix applied
  // directly, for the exact same (n1, n2) split.
  for (auto [a, b] :
       {std::pair<idx_t, idx_t>{4, 8}, {8, 8}, {3, 16}, {16, 4}}) {
    const idx_t n = a * b;
    FftOptions o = large_opts(1);
    o.factor_n1 = a;
    Fft1dLarge plan(n, Direction::Forward, o);
    auto x = random_cvec(n, 9550 + n);
    cvec want(x.size());
    spl::dft1d_four_step(a, b)->apply(x.data(), want.data());
    cvec in = x, got(x.size());
    plan.execute(in.data(), got.data());
    EXPECT_LT(max_err(want, got), fft_tol(static_cast<double>(n)))
        << a << "x" << b;
  }
}

TEST(Fft1dLarge, PrimeSizesDegenerateToFlat) {
  const idx_t n = 65537;  // Fermat prime: no divisor in [2, n/2]
  Fft1dLarge plan(n, Direction::Forward, large_opts(1));
  EXPECT_EQ(1, plan.factor_n1());
  auto x = random_cvec(n, 9560);
  const cvec want = stockham_oracle(x);
  cvec in = x, got(x.size());
  plan.execute(in.data(), got.data());
  EXPECT_LT(max_err(want, got), fft_tol(static_cast<double>(n)));
}

TEST(Fft1dLarge, ChooseFactorsPolicy) {
  // The default split is skewed, not near-square: short core-private
  // column FFTs, rows capped so a row stays cache-resident.
  const auto [n1, n2] = Fft1dLarge::choose_factors(idx_t{1} << 22, 0);
  EXPECT_EQ((idx_t{1} << 22), n1 * n2);
  EXPECT_GE(n2, n1);  // rows at least as long as the column count
  // Requests are honoured exactly, misfits rejected.
  EXPECT_EQ(std::make_pair(idx_t{16}, idx_t{256}),
            Fft1dLarge::choose_factors(4096, 16));
  EXPECT_THROW(Fft1dLarge::choose_factors(64, 5), Error);
}

}  // namespace
}  // namespace bwfft
