// Ablation: software pipelining (Table II) and the compute/data split.
//
// Two questions from §III-C:
//  (a) what does overlapping Load/Store with Compute buy, versus running
//      the same tiled stages in lockstep (load -> compute -> store)?
//  (b) how does the p_c/p_d split affect performance for p total threads?
//
// On a single hardware thread the overlap cannot buy wall time (the roles
// time-share one core) — the interesting output there is (b) showing the
// framework degrades gracefully; on a multicore host (a) shows the Table
// II benefit directly.
#include <cstdio>
#include <cstdlib>

#include "bench_util.h"
#include "benchutil/metrics.h"
#include "benchutil/table.h"
#include "common/cpu.h"
#include "fft/double_buffer.h"

using namespace bwfft;

int main() {
  int shift = 0;
  if (const char* env = std::getenv("BWFFT_ABL_SHIFT")) shift = std::atoi(env);
  const idx_t k = 64 << shift, n = 64 << shift, m = 64 << shift;
  const idx_t total = k * n * m;
  const int cpus = online_cpus();

  cvec original = random_cvec(total);
  cvec in(original.size()), out(original.size());

  std::printf("Ablation: overlap & thread roles, %lld^3, host has %d cpus\n\n",
              static_cast<long long>(m), cpus);

  Table table({"threads", "p_c/p_d", "pipelined GF/s", "lockstep GF/s",
               "overlap gain"});

  const int totals[] = {1, 2, 4, 8};
  for (int p : totals) {
    for (int pc = std::max(1, p / 2); pc <= std::max(1, p / 2) + (p >= 4 ? 1 : 0);
         ++pc) {
      FftOptions o;
      o.threads = p;
      o.compute_threads = pc;
      DoubleBufferEngine eng({k, n, m}, Direction::Forward, o);

      auto run = [&](bool pipelined) {
        std::vector<double> times;
        for (int r = 0; r < 3; ++r) {
          std::copy(original.begin(), original.end(), in.begin());
          Timer t;
          if (pipelined) {
            eng.execute(in.data(), out.data());
          } else {
            eng.execute_unpipelined(in.data(), out.data());
          }
          times.push_back(t.seconds());
        }
        std::sort(times.begin(), times.end());
        return times[1];
      };

      const double tp = run(true);
      const double tl = run(false);
      table.add_row({std::to_string(p),
                     std::to_string(pc) + "/" + std::to_string(p - pc),
                     fmt_double(fft_gflops(static_cast<double>(total), tp)),
                     fmt_double(fft_gflops(static_cast<double>(total), tl)),
                     fmt_double(tl / tp, 2) + "x"});
    }
  }
  table.print();

  // Role utilisation: how busy each role group is within each stage's
  // wall time — the soft-DMA balance picture (§III-C).
  {
    FftOptions o;
    o.threads = 2;
    o.compute_threads = 1;
    DoubleBufferEngine eng({k, n, m}, Direction::Forward, o);
    eng.set_collect_utilization(true);
    std::copy(original.begin(), original.end(), in.begin());
    eng.execute(in.data(), out.data());
    std::printf("\nRole utilisation per stage (p_c=1, p_d=1):\n");
    Table ut({"stage", "wall ms", "load busy", "store busy", "compute busy"});
    const auto& stats = eng.last_stats();
    for (std::size_t s = 0; s < stats.size(); ++s) {
      const auto& u = stats[s].util;
      const double wall = std::max(u.wall_seconds, 1e-12);
      ut.add_row({std::to_string(s), fmt_double(wall * 1e3, 2),
                  fmt_percent(u.load_seconds / wall),
                  fmt_percent(u.store_seconds / wall),
                  fmt_percent(u.compute_seconds / wall)});
    }
    ut.print();
  }

  std::printf("\nPaper reference: the even split with paired pinning is the "
              "paper's operating point; overlap is what lifts bandwidth "
              "utilisation from <50%% to 80-90%% — it requires >= 2 hardware "
              "threads to materialise.\n");
  return 0;
}
