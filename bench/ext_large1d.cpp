// Extension benchmark: double-buffered large 1D FFT (the paper's §V
// future-work case — the transform no longer fits the shared buffer).
//
// Compares three ways to compute a large 1D FFT:
//   stockham    — the flat in-cache kernel (one pass, but the working set
//                 and its log N sweeps all live in the cache hierarchy)
//   naive DIT   — in-place strided butterflies over the full array
//   four-step   — two tiled, software-pipelined passes through the
//                 cache-resident double buffer (DoubleBuffer1d)
#include <cstdio>
#include <cstdlib>

#include "bench_util.h"
#include "benchutil/metrics.h"
#include "benchutil/table.h"
#include "fft/double_buffer_1d.h"
#include "stream/stream.h"

using namespace bwfft;

int main() {
  int shift = 0;
  if (const char* env = std::getenv("BWFFT_EXT_SHIFT")) shift = std::atoi(env);
  FftOptions four_opts;
  if (const char* env = std::getenv("BWFFT_EXT_NT")) {
    four_opts.nontemporal = std::atoi(env) != 0;
  }
  if (const char* env = std::getenv("BWFFT_EXT_F1")) {
    four_opts.factor_n1 = std::atoll(env);
  }

  const double bw = measured_stream_bandwidth_gbs();
  std::printf("Extension: large 1D FFT, double-buffered four-step "
              "(STREAM %.1f GB/s; 2-pass peak shown)\n\n", bw);

  Table table({"n", "peak GF/s", "stockham GF/s", "naive DIT GF/s",
               "four-step GF/s"});
  for (int logn = 18; logn <= 22; ++logn) {
    const idx_t n = idx_t{1} << (logn + shift);
    const double peak = achievable_peak_gflops(static_cast<double>(n), 2, bw);
    cvec original = random_cvec(n);
    cvec in(original.size()), out(original.size());

    Fft1d flat(n, Direction::Forward);
    double t_flat = 1e30, t_dit = 1e30, t_four = 1e30;
    for (int r = 0; r < 3; ++r) {
      std::copy(original.begin(), original.end(), in.begin());
      Timer t;
      flat.apply_batch(in.data(), 1);
      t_flat = std::min(t_flat, t.seconds());
    }
    for (int r = 0; r < 3; ++r) {
      std::copy(original.begin(), original.end(), in.begin());
      Timer t;
      flat.apply_strided_inplace(in.data(), 1);
      t_dit = std::min(t_dit, t.seconds());
    }
    DoubleBuffer1d four(n, Direction::Forward, four_opts);
    for (int r = 0; r < 3; ++r) {
      std::copy(original.begin(), original.end(), in.begin());
      Timer t;
      four.execute(in.data(), out.data());
      t_four = std::min(t_four, t.seconds());
    }

    table.add_row({"2^" + std::to_string(logn + shift), fmt_double(peak),
                   fmt_double(fft_gflops(static_cast<double>(n), t_flat)),
                   fmt_double(fft_gflops(static_cast<double>(n), t_dit)),
                   fmt_double(fft_gflops(static_cast<double>(n), t_four))});
  }
  table.print();
  std::printf("\nThe four-step engine streams the array exactly twice at "
              "cacheline granularity with all reshaping on cached data — "
              "the method §V leaves as future work for FFTs larger than "
              "the shared buffer.\n");
  return 0;
}
