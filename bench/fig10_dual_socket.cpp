// Figure 10 + Figure 11 (bottom) harness: dual-socket 3D FFT.
//
// Fig 10: Gflop/s of the dual-socket slab-pencil double-buffered 3D FFT
// against the single-socket baselines, with the QPI/HT link term of the
// paper's roofline analysis: the implementation writes over the link in
// stages 2 and 3 (Fig 8), so the honest bound uses the cumulative
// memory+link bandwidth, against which the paper lands within 7-15%.
//
// Fig 11 (bottom): scaling for fixed problem sizes when going from one to
// two sockets; the paper reports ~1.7x on Intel (QPI-limited) and better
// on AMD (HT runs at local-memory speed).
//
// On a machine without two NUMA domains the two "sockets" are separate
// arenas of the same DRAM: the measured time reflects one memory system,
// and the link penalty is reported from recorded cross-socket traffic at
// the paper machines' link bandwidths.
#include <cstdio>
#include <cstdlib>

#include "bench_util.h"
#include "benchutil/metrics.h"
#include "benchutil/table.h"
#include "fft/dual_socket.h"
#include "stream/stream.h"

using namespace bwfft;

int main() {
  int shift = 0;
  if (const char* env = std::getenv("BWFFT_FIG10_SHIFT")) shift = std::atoi(env);

  const double bw = measured_stream_bandwidth_gbs();
  const auto intel2 = machines::haswell_2667v3();
  const auto amd2 = machines::amd_6276();

  std::printf("Fig 10: dual-socket 3D FFT (STREAM %.1f GB/s measured; link "
              "model: QPI %.1f GB/s, HT %.1f GB/s)\n\n",
              bw, intel2.link_bw_gbs, amd2.link_bw_gbs);

  struct Size {
    idx_t k, n, m;
  };
  const Size sizes[] = {{64, 64, 64}, {64, 64, 128}, {128, 64, 128},
                        {128, 128, 128}};

  Table table({"size", "stagepar GF/s", "dbuf-1sk GF/s", "dbuf-2sk GF/s",
               "2sk/1sk", "x-link GB", "QPI penalty", "HT penalty"});

  for (const Size& s : sizes) {
    const idx_t k = s.k << shift, n = s.n << shift, m = s.m << shift;
    const idx_t total = k * n * m;
    cvec original = random_cvec(total);
    cvec in(original.size()), out(original.size());

    FftOptions o;
    o.engine = EngineKind::StageParallel;
    Fft3d sp(k, n, m, Direction::Forward, o);
    const double t_sp = bench::time_plan(sp, in, out, original);

    o.engine = EngineKind::DoubleBuffer;
    Fft3d db1(k, n, m, Direction::Forward, o);
    const double t_db1 = bench::time_plan(db1, in, out, original);

    DualSocketFft3d db2(k, n, m, Direction::Forward, o, 2);
    const double t_db2 = bench::time_plan(db2, in, out, original);
    const double cross_gb =
        static_cast<double>(db2.traffic().write_bytes()) / 1e9;

    // Link-penalty model: seconds the recorded cross-socket writes need at
    // the paper machines' link bandwidths (write-only traffic; reads stay
    // local by construction, Fig 8).
    const double qpi_pen = db2.traffic().modeled_seconds(intel2.link_bw_gbs);
    const double ht_pen = db2.traffic().modeled_seconds(amd2.link_bw_gbs);

    char label[64];
    std::snprintf(label, sizeof(label), "%lldx%lldx%lld",
                  static_cast<long long>(k), static_cast<long long>(n),
                  static_cast<long long>(m));
    table.add_row(
        {label, fmt_double(fft_gflops(static_cast<double>(total), t_sp)),
         fmt_double(fft_gflops(static_cast<double>(total), t_db1)),
         fmt_double(fft_gflops(static_cast<double>(total), t_db2)),
         fmt_double(t_db1 / t_db2, 2) + "x", fmt_double(cross_gb, 3),
         fmt_double(qpi_pen * 1e3, 1) + " ms",
         fmt_double(ht_pen * 1e3, 1) + " ms"});
  }
  table.print();

  std::printf("\nFig 11 (bottom): socket scaling on the paper's two-socket "
              "profiles (roofline model at paper bandwidths)\n\n");
  Table scale({"size", "machine", "1sk bound GF/s", "2sk bound GF/s",
               "model speedup"});
  for (const Size& s : sizes) {
    const idx_t total = (s.k << shift) * (s.n << shift) * (s.m << shift);
    for (const MachineTopology* t : {&intel2, &amd2}) {
      // One socket: half the machine's STREAM bandwidth. Two sockets: full
      // bandwidth, but stages 2+3 additionally move N/2 elements each over
      // the link; the slower of the two pipes bounds each stage.
      const double one = achievable_peak_gflops(static_cast<double>(total), 3,
                                                t->stream_bw_gbs / 2);
      const double bytes_per_stage = 2.0 * static_cast<double>(total) * sizeof(cplx);
      const double mem_t = bytes_per_stage / (t->stream_bw_gbs * 1e9);
      const double link_t =
          (static_cast<double>(total) / 2 * sizeof(cplx)) / (t->link_bw_gbs * 1e9);
      const double stage_t = std::max(mem_t, link_t);
      const double two =
          fft_flops(static_cast<double>(total)) / (1e9 * (2 * std::max(mem_t, link_t) + mem_t));
      (void)stage_t;
      char label[64];
      std::snprintf(label, sizeof(label), "%lld^3-ish: %lld pts",
                    static_cast<long long>(s.m << shift),
                    static_cast<long long>(total));
      scale.add_row({label, t->name, fmt_double(one), fmt_double(two),
                     fmt_double(two / one, 2) + "x"});
    }
  }
  scale.print();
  std::printf("\nPaper reference: dual-socket improves 1.2-1.6x over "
              "MKL/FFTW (Fig 10); fixed-size socket scaling ~1.7x on Intel, "
              "near-2x on AMD whose HT link runs at memory speed (Fig 11 "
              "bottom).\n");
  return 0;
}
