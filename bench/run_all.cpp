// run_all — sweep the Fig 1 / Fig 9 size grids plus the out-of-LLC 1D
// four-step grid over every engine and emit the machine-readable
// BENCH_*.json perf trajectory (benchutil/bench_schema).
//
//   run_all [--label NAME] [--out FILE] [--smoke]
//
// Per (engine, size) row: best wall time over a few reps, pseudo-Gflop/s,
// %-of-achievable-peak (STREAM roofline, nr_stages = rank), the obs
// counters of one observed execution, and the per-stage roofline derived
// from that execution's 'G' trace slices. --smoke shrinks the grids to
// seconds of runtime for CI; the dense reference engine is capped by
// estimated cost instead of silently sweeping sizes where an O(N * side)
// oracle would run for minutes — skipped rows are reported on stderr.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "benchutil/bench_schema.h"
#include "benchutil/metrics.h"
#include "common/rng.h"
#include "common/timer.h"
#include "fft/engine.h"
#include "fft/fft.h"
#include "obs/obs.h"
#include "stream/stream.h"

using namespace bwfft;

namespace {

// Estimated multiply-accumulates of the dense reference oracle:
// sum over axes of N * side. Sizes above the cap are skipped for the
// reference engine only.
constexpr double kDenseCostCap = 1e9;

double dense_cost(const std::vector<idx_t>& dims) {
  double n = 1.0;
  for (idx_t d : dims) n *= static_cast<double>(d);
  double cost = 0.0;
  for (idx_t d : dims) cost += n * static_cast<double>(d);
  return cost;
}

const char* dims_str(const std::vector<idx_t>& dims, char* buf,
                     std::size_t cap) {
  std::size_t off = 0;
  for (std::size_t i = 0; i < dims.size(); ++i) {
    off += static_cast<std::size_t>(
        std::snprintf(buf + off, cap - off, "%s%lld", i ? "x" : "",
                      static_cast<long long>(dims[i])));
  }
  return buf;
}

/// Time and observe one (engine, size) combination.
BenchRow run_case(EngineKind kind, const std::vector<idx_t>& dims,
                  double bw) {
  const Direction dir = Direction::Forward;
  FftOptions opts;
  opts.engine = kind;
  // Auto rows plan at Estimate level: the cost model alone, so the sweep
  // stays fast and the row shows what the model would serve by default.
  opts.tune_level = TuneLevel::Estimate;

  idx_t total = 1;
  for (idx_t d : dims) total *= d;
  cvec original = random_cvec(total);
  cvec in(original.size()), out(original.size());

  std::unique_ptr<Fft2d> plan2;
  std::unique_ptr<Fft3d> plan3;
  std::unique_ptr<MdEngine> plan1;
  if (dims.size() == 1) {
    plan1 = make_engine(dims, dir, opts);
  } else if (dims.size() == 2) {
    plan2 = std::make_unique<Fft2d>(dims[0], dims[1], dir, opts);
  } else {
    plan3 = std::make_unique<Fft3d>(dims[0], dims[1], dims[2], dir, opts);
  }
  auto run_once = [&] {
    std::copy(original.begin(), original.end(), in.begin());
    if (plan1) {
      plan1->execute(in.data(), out.data());
    } else if (plan2) {
      plan2->execute(in.data(), out.data());
    } else {
      plan3->execute(in.data(), out.data());
    }
  };

  // The naive strided DIT (1D Pencil) is the cache-hostile baseline: at
  // out-of-LLC sizes one execution already takes many seconds, so a
  // single rep documents it without dominating the sweep's wall clock.
  const bool slow_baseline =
      kind == EngineKind::Reference ||
      (dims.size() == 1 && kind == EngineKind::Pencil);
  const int reps = slow_baseline ? 1 : 3;
  double best = 1e30;
  for (int r = 0; r < reps; ++r) {
    Timer t;
    run_once();
    best = std::min(best, t.seconds());
  }

  // Observed replays for counters and per-stage slices (kept out of the
  // timed loop). The stage roofline comes from ONE traced execution, so
  // a single scheduler hiccup would poison the published per-stage
  // numbers where the wall-clock number is already protected by best-of;
  // replay a few times and keep the trace whose engine ('G') slices
  // total least.
  std::vector<obs::Slice> slices;
  obs::CounterSnapshot snap;
  double best_stage_total = 1e30;
  const int observed_reps = slow_baseline ? 1 : 3;
  for (int r = 0; r < observed_reps; ++r) {
    obs::reset_counters();
    obs::start_trace();
    run_once();
    obs::stop_trace();
    std::vector<obs::Slice> got = obs::drain_trace();
    double stage_total = 0.0;
    for (const obs::Slice& s : got) {
      if (s.phase == 'G') {
        stage_total += static_cast<double>(s.t1_ns - s.t0_ns);
      }
    }
    if (stage_total < best_stage_total) {
      best_stage_total = stage_total;
      slices = std::move(got);
      snap = obs::counters();
    }
  }

  BenchRow row;
  row.engine = engine_name(kind);
  if (kind == EngineKind::Auto) {
    row.resolved = plan1   ? plan1->name()
                   : plan2 ? plan2->engine_name()
                           : plan3->engine_name();
  }
  row.dims = dims;
  row.best_seconds = best;
  row.pseudo_gflops = fft_gflops(static_cast<double>(total), best);
  // 1D rows roofline against two streaming passes — the four-step
  // minimum for an out-of-LLC transform (columns+twiddle, then
  // rows+permute); a one-pass bound is unreachable at these sizes.
  const int nr_stages = dims.size() == 1 ? 2 : static_cast<int>(dims.size());
  const double bound =
      io_bound_seconds(static_cast<double>(total), nr_stages, bw);
  row.pct_of_peak = bound / best * 100.0;
  for (int c = 0; c < obs::kCounterCount; ++c) {
    const auto counter = static_cast<obs::Counter>(c);
    row.counters.emplace_back(obs::counter_name(counter), snap[counter]);
  }
  const double stage_bytes = 2.0 * static_cast<double>(total) * sizeof(cplx);
  for (const obs::StageRoofline& s :
       obs::roofline_from_trace(slices, stage_bytes, bw)) {
    row.stages.push_back({s.name, s.seconds, s.pct_of_peak});
  }
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  std::string label = "PR2";
  std::string out_path = "BENCH_PR2.json";
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--label" && i + 1 < argc) {
      label = argv[++i];
    } else if (arg == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else if (arg == "--smoke") {
      smoke = true;
    } else {
      std::fprintf(stderr,
                   "usage: %s [--label NAME] [--out FILE] [--smoke]\n",
                   argv[0]);
      return 2;
    }
  }

  // Fig 1 grid: the eight cubes with sides {lo, hi}; Fig 9 grid: the
  // square/rectangular 2D mix; 1D grid: the out-of-LLC four-step sizes
  // (ext_large1d's territory). Smoke mode shrinks all three.
  std::vector<std::vector<idx_t>> grid3, grid2, grid1;
  const idx_t side_lo = smoke ? 16 : 64, side_hi = smoke ? 32 : 128;
  const idx_t sides[2] = {side_lo, side_hi};
  for (int a = 0; a < 2; ++a)
    for (int b = 0; b < 2; ++b)
      for (int c = 0; c < 2; ++c) grid3.push_back({sides[a], sides[b], sides[c]});
  if (smoke) {
    grid2 = {{64, 64}, {64, 128}};
    grid1 = {{idx_t{1} << 14}, {idx_t{1} << 16}};
  } else {
    grid2 = {{256, 256},   {256, 512},  {512, 512},  {512, 1024},
             {1024, 1024}, {1024, 2048}, {2048, 2048}};
    for (int lg = 22; lg <= 26; ++lg) grid1.push_back({idx_t{1} << lg});
  }

  const EngineKind engines[] = {EngineKind::Reference, EngineKind::Pencil,
                                EngineKind::StageParallel,
                                EngineKind::SlabPencil,
                                EngineKind::DoubleBuffer, EngineKind::Auto};

  BenchReport report;
  report.label = label;
  report.stream_gbs = measured_stream_bandwidth_gbs();
  std::printf(
      "run_all: STREAM %.1f GB/s, %zu 3D + %zu 2D + %zu 1D sizes -> %s\n",
      report.stream_gbs, grid3.size(), grid2.size(), grid1.size(),
      out_path.c_str());

  auto sweep = [&](const std::vector<std::vector<idx_t>>& grid) {
    for (const auto& dims : grid) {
      char buf[64];
      for (EngineKind kind : engines) {
        if (kind == EngineKind::SlabPencil && dims.size() != 3) {
          continue;  // slab-pencil is 3D only
        }
        if (kind == EngineKind::Reference &&
            dense_cost(dims) > kDenseCostCap) {
          std::fprintf(stderr,
                       "run_all: skip reference %s (dense cost %.2g > "
                       "cap %.2g)\n",
                       dims_str(dims, buf, sizeof(buf)), dense_cost(dims),
                       kDenseCostCap);
          continue;
        }
        BenchRow row = run_case(kind, dims, report.stream_gbs);
        std::string shown = row.engine;
        if (!row.resolved.empty()) shown += "->" + row.resolved;
        std::printf("  %-14s %-14s %9.3f ms  %7.2f GF/s  %5.1f%% peak\n",
                    shown.c_str(), dims_str(dims, buf, sizeof(buf)),
                    row.best_seconds * 1e3, row.pseudo_gflops,
                    row.pct_of_peak);
        std::fflush(stdout);
        report.rows.push_back(std::move(row));
      }
    }
  };
  sweep(grid3);
  sweep(grid2);
  sweep(grid1);

  const Json doc = bench_report_to_json(report);
  std::string err;
  if (!validate_bench_report(doc, &err)) {
    std::fprintf(stderr, "run_all: generated report is invalid: %s\n",
                 err.c_str());
    return 1;
  }
  std::FILE* f = std::fopen(out_path.c_str(), "wb");
  if (!f) {
    std::fprintf(stderr, "run_all: cannot open %s\n", out_path.c_str());
    return 1;
  }
  const std::string text = doc.dump(2) + "\n";
  const bool ok = std::fwrite(text.data(), 1, text.size(), f) == text.size();
  const bool closed = std::fclose(f) == 0;
  if (!ok || !closed) {
    std::fprintf(stderr, "run_all: short write to %s\n", out_path.c_str());
    return 1;
  }
  std::printf("run_all: wrote %zu rows to %s\n", report.rows.size(),
              out_path.c_str());
  return 0;
}
