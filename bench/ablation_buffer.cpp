// Ablation: shared-buffer size (§IV-A's b = LLC/2 policy).
//
// Sweeps the per-half block size from far-too-small (many iterations, high
// barrier overhead, poor streaming granularity) past the policy point to
// buffer-larger-than-LLC (the "cached" buffer spills and the load/compute
// separation stops paying). Prints iterations per stage alongside GF/s so
// the small-iter efficiency cliff of Fig 9's discussion is visible.
#include <cstdio>
#include <cstdlib>

#include "bench_util.h"
#include "benchutil/metrics.h"
#include "benchutil/table.h"
#include "pipeline/pipeline.h"

using namespace bwfft;

int main() {
  int shift = 0;
  if (const char* env = std::getenv("BWFFT_ABL_SHIFT")) shift = std::atoi(env);
  const idx_t k = 64 << shift, n = 64 << shift, m = 64 << shift;
  const idx_t total = k * n * m;

  cvec original = random_cvec(total);
  cvec in(original.size()), out(original.size());

  FftOptions probe;
  const idx_t policy = default_block_elems(probe.topo);
  std::printf("Ablation: buffer size, %lld^3 (policy block = %lld elems = "
              "LLC/4)\n\n",
              static_cast<long long>(m), static_cast<long long>(policy));

  Table table({"block elems", "KiB/half", "iters(stage1)", "GF/s"});
  for (idx_t block = 1024; block <= policy * 4; block *= 4) {
    FftOptions o;
    o.block_elems = block;
    Fft3d plan(k, n, m, Direction::Forward, o);
    const double secs = bench::time_plan(plan, in, out, original);
    const idx_t rows1 = k * n;  // stage 1 rows
    const idx_t brows = std::max<idx_t>(std::min(block / m, rows1), 1);
    table.add_row({std::to_string(block),
                   std::to_string(block * sizeof(cplx) / 1024),
                   std::to_string(rows1 / brows),
                   fmt_double(fft_gflops(static_cast<double>(total), secs))});
  }
  table.print();
  std::printf("\nPaper reference: b = LLC/2 total leaves room for twiddles "
              "and temporaries; too-small b costs iterations, too-large b "
              "evicts the very data being double-buffered.\n");
  return 0;
}
