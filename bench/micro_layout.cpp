// google-benchmark microbenchmarks for the data-movement layer: streaming
// copies, blocked transposes and cube rotations, temporal vs non-temporal.
#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "layout/rotate.h"
#include "layout/stream_copy.h"
#include "layout/transpose.h"

namespace {

using namespace bwfft;

void BM_CopyStream(benchmark::State& state) {
  const idx_t n = state.range(0);
  const bool nt = state.range(1) != 0;
  cvec src = random_cvec(n), dst(src.size());
  for (auto _ : state) {
    copy_stream(dst.data(), src.data(), n, nt);
    stream_fence();
    benchmark::DoNotOptimize(dst.data());
  }
  state.SetBytesProcessed(state.iterations() * n * static_cast<idx_t>(sizeof(cplx)));
}
BENCHMARK(BM_CopyStream)
    ->Args({1 << 16, 0})
    ->Args({1 << 16, 1})
    ->Args({1 << 21, 0})
    ->Args({1 << 21, 1});

void BM_TransposePackets(benchmark::State& state) {
  const idx_t side = state.range(0);
  const bool nt = state.range(1) != 0;
  cvec src = random_cvec(side * side * kMu), dst(src.size());
  for (auto _ : state) {
    transpose_packets(src.data(), dst.data(), side, side, kMu, nt);
    stream_fence();
    benchmark::DoNotOptimize(dst.data());
  }
  state.SetBytesProcessed(state.iterations() * static_cast<idx_t>(src.size()) *
                          static_cast<idx_t>(sizeof(cplx)));
}
BENCHMARK(BM_TransposePackets)->Args({128, 0})->Args({128, 1})->Args({512, 0})->Args({512, 1});

void BM_RotateCubePackets(benchmark::State& state) {
  const idx_t side = state.range(0);
  const bool nt = state.range(1) != 0;
  const idx_t cp = side / kMu;
  cvec src = random_cvec(side * side * cp * kMu), dst(src.size());
  for (auto _ : state) {
    rotate_cube_packets(src.data(), dst.data(), side, side, cp, kMu, nt);
    stream_fence();
    benchmark::DoNotOptimize(dst.data());
  }
  state.SetBytesProcessed(state.iterations() * static_cast<idx_t>(src.size()) *
                          static_cast<idx_t>(sizeof(cplx)));
}
BENCHMARK(BM_RotateCubePackets)->Args({64, 0})->Args({64, 1})->Args({128, 0})->Args({128, 1});

void BM_ElementRotation(benchmark::State& state) {
  const idx_t side = state.range(0);
  cvec src = random_cvec(side * side * side), dst(src.size());
  for (auto _ : state) {
    rotate_cube(src.data(), dst.data(), side, side, side);
    benchmark::DoNotOptimize(dst.data());
  }
  state.SetBytesProcessed(state.iterations() * static_cast<idx_t>(src.size()) *
                          static_cast<idx_t>(sizeof(cplx)));
}
BENCHMARK(BM_ElementRotation)->Arg(64)->Arg(128);

}  // namespace
