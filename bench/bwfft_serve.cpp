// bwfft_serve — throughput of the exec service vs per-call planning.
//
//   bwfft_serve [--requests N] [--producers P] [--threads T]
//               [--queue CAP] [--batch B]
//
// Replays the same mixed stream of cached-shape requests (a few 3D cubes
// and 2D grids, round-robin) two ways:
//
//   baseline  per-call plan-and-spawn: every request constructs a fresh
//             Fft2d/Fft3d (twiddle tables + private thread team) and
//             executes once — what naive concurrent callers of the facade
//             API do today;
//   service   one BatchExecutor: persistent pooled team, shared
//             PlanCache, bounded queue, same-shape coalescing.
//
// Prints requests/s and p50/p99 end-to-end latency for both, the
// speedup, and the service's batching/teams statistics. The ISSUE-5
// acceptance bar is >= 2x service-over-baseline throughput.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "benchutil/args.h"
#include "common/rng.h"
#include "exec/batch_executor.h"
#include "fft/fft.h"
#include "obs/obs.h"

using namespace bwfft;

namespace {

struct Shape {
  std::vector<idx_t> dims;
  Direction dir;
};

struct Latency {
  std::vector<double> ms;
  double quantile(double q) {
    if (ms.empty()) return 0.0;
    std::sort(ms.begin(), ms.end());
    const std::size_t i = std::min(
        ms.size() - 1, static_cast<std::size_t>(q * static_cast<double>(
                                                        ms.size())));
    return ms[i];
  }
};

long long arg_int(int argc, char** argv, int& i, const char* flag) {
  if (i + 1 >= argc) {
    std::fprintf(stderr, "%s needs a value\n", flag);
    std::exit(2);
  }
  long long v = 0;
  std::string err;
  if (!cli::parse_int(argv[++i], 1, &v, &err)) {
    std::fprintf(stderr, "%s: %s\n", flag, err.c_str());
    std::exit(2);
  }
  return v;
}

}  // namespace

int main(int argc, char** argv) {
  int requests = 96;
  int producers = 4;
  int threads = 0;
  std::size_t queue_cap = 256;
  std::size_t max_batch = 16;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--requests") {
      requests = static_cast<int>(arg_int(argc, argv, i, "--requests"));
    } else if (a == "--producers") {
      producers = static_cast<int>(arg_int(argc, argv, i, "--producers"));
    } else if (a == "--threads") {
      threads = static_cast<int>(arg_int(argc, argv, i, "--threads"));
    } else if (a == "--queue") {
      queue_cap = static_cast<std::size_t>(arg_int(argc, argv, i, "--queue"));
    } else if (a == "--batch") {
      max_batch = static_cast<std::size_t>(arg_int(argc, argv, i, "--batch"));
    } else {
      std::fprintf(stderr,
                   "usage: %s [--requests N] [--producers P] [--threads T] "
                   "[--queue CAP] [--batch B]\n",
                   argv[0]);
      return 2;
    }
  }

  // Serving-scale shapes: small enough that per-request plan construction
  // (twiddle tables, team spin-up, buffer placement) is a significant
  // fraction of a plan-and-spawn call — exactly the overhead a service
  // amortises. Large one-off transforms belong to the figure harnesses.
  const std::vector<Shape> shapes = {
      {{32, 32, 32}, Direction::Forward},
      {{16, 16, 16}, Direction::Forward},
      {{128, 128}, Direction::Forward},
      {{64, 64}, Direction::Forward},
      {{32, 32, 32}, Direction::Inverse},
  };
  idx_t max_total = 0;
  for (const auto& s : shapes) {
    idx_t t = 1;
    for (idx_t d : s.dims) t *= d;
    max_total = std::max(max_total, t);
  }

  // Per-producer buffers, reused across requests: the stream measures
  // plan/dispatch cost, not allocator throughput.
  std::vector<cvec> ins, outs;
  const cvec seed = random_cvec(max_total);
  for (int p = 0; p < producers; ++p) {
    ins.push_back(seed);
    outs.emplace_back(static_cast<std::size_t>(max_total));
  }

  std::printf("mixed stream: %d requests, %d producers, shapes", requests,
              producers);
  for (const auto& s : shapes) {
    std::printf(" ");
    for (std::size_t i = 0; i < s.dims.size(); ++i) {
      std::printf("%s%lld", i ? "x" : "", static_cast<long long>(s.dims[i]));
    }
    std::printf("%s", s.dir == Direction::Inverse ? "(inv)" : "");
  }
  std::printf("\n");

  using Clock = std::chrono::steady_clock;
  auto ms_since = [](Clock::time_point t0) {
    return std::chrono::duration<double, std::milli>(Clock::now() - t0)
        .count();
  };

  // --- Baseline: plan-and-spawn per call, `producers` concurrent callers.
  Latency base_lat;
  std::mutex lat_mu;
  const auto base_t0 = Clock::now();
  {
    std::vector<std::thread> tt;
    for (int p = 0; p < producers; ++p) {
      tt.emplace_back([&, p] {
        Latency local;
        for (int r = p; r < requests; r += producers) {
          const Shape& s = shapes[static_cast<std::size_t>(r) %
                                  shapes.size()];
          const auto t0 = Clock::now();
          FftOptions opts;
          opts.threads = threads;
          std::copy(seed.begin(), seed.end(), ins[p].begin());
          if (s.dims.size() == 2) {
            Fft2d plan(s.dims[0], s.dims[1], s.dir, opts);
            plan.execute(ins[p].data(), outs[p].data());
          } else {
            Fft3d plan(s.dims[0], s.dims[1], s.dims[2], s.dir, opts);
            plan.execute(ins[p].data(), outs[p].data());
          }
          local.ms.push_back(ms_since(t0));
        }
        std::lock_guard<std::mutex> lk(lat_mu);
        base_lat.ms.insert(base_lat.ms.end(), local.ms.begin(),
                           local.ms.end());
      });
    }
    for (auto& t : tt) t.join();
  }
  const double base_s = ms_since(base_t0) / 1e3;
  const double base_rps = static_cast<double>(requests) / base_s;

  // --- Service: one BatchExecutor shared by all producers.
  exec::ServeOptions sopts;
  sopts.threads = threads;
  sopts.queue_capacity = queue_cap;
  sopts.max_batch = max_batch;
  exec::BatchExecutor executor(sopts);

  // Warm the plan cache outside the timed window: the steady-state
  // service serves cached shapes (that is the scenario the acceptance
  // bar describes), so the one-time tuning/planning cost is not part of
  // per-request latency.
  for (const auto& s : shapes) {
    exec::Request req;
    req.dims = s.dims;
    req.dir = s.dir;
    req.in = ins[0].data();
    req.out = outs[0].data();
    executor.submit(std::move(req)).get();
  }

  Latency serve_lat;
  const auto serve_t0 = Clock::now();
  {
    std::vector<std::thread> tt;
    for (int p = 0; p < producers; ++p) {
      tt.emplace_back([&, p] {
        Latency local;
        std::vector<std::future<ExecReport>> pending;
        std::vector<Clock::time_point> started;
        for (int r = p; r < requests; r += producers) {
          const Shape& s = shapes[static_cast<std::size_t>(r) %
                                  shapes.size()];
          exec::Request req;
          req.dims = s.dims;
          req.dir = s.dir;
          req.in = ins[p].data();
          req.out = outs[p].data();
          started.push_back(Clock::now());
          pending.push_back(executor.submit(std::move(req)));
        }
        for (std::size_t i = 0; i < pending.size(); ++i) {
          const ExecReport rep = pending[i].get();
          if (!rep.status.ok()) {
            std::fprintf(stderr, "service request failed: %s\n",
                         rep.status.str().c_str());
            std::exit(1);
          }
          local.ms.push_back(ms_since(started[i]));
        }
        std::lock_guard<std::mutex> lk(lat_mu);
        serve_lat.ms.insert(serve_lat.ms.end(), local.ms.begin(),
                            local.ms.end());
      });
    }
    for (auto& t : tt) t.join();
  }
  const double serve_s = ms_since(serve_t0) / 1e3;
  const double serve_rps = static_cast<double>(requests) / serve_s;

  const exec::ExecStats st = executor.stats();
  std::printf("\n%-9s %12s %10s %10s\n", "mode", "requests/s", "p50 ms",
              "p99 ms");
  std::printf("%-9s %12.1f %10.3f %10.3f\n", "baseline", base_rps,
              base_lat.quantile(0.50), base_lat.quantile(0.99));
  std::printf("%-9s %12.1f %10.3f %10.3f\n", "service", serve_rps,
              serve_lat.quantile(0.50), serve_lat.quantile(0.99));
  std::printf("speedup: %.2fx\n", serve_rps / base_rps);
  std::printf(
      "service: batches=%llu occupancy=%.2f (max %zu) peak_queue=%zu "
      "plan_cache hits=%llu misses=%llu\n",
      static_cast<unsigned long long>(st.batches), st.batch_occupancy(),
      st.max_batch_occupancy, st.peak_queue_depth,
      static_cast<unsigned long long>(executor.cache().stats().hits),
      static_cast<unsigned long long>(executor.cache().stats().misses));
  std::printf(
      "service: shed=%llu quota=%llu retried=%llu quarantined=%llu "
      "integrity=%llu/%llu\n",
      static_cast<unsigned long long>(st.shed),
      static_cast<unsigned long long>(st.quota_rejected),
      static_cast<unsigned long long>(st.retried),
      static_cast<unsigned long long>(st.quarantined),
      static_cast<unsigned long long>(st.integrity_failed),
      static_cast<unsigned long long>(st.integrity_checked));
#if defined(BWFFT_OBS)
  const auto snap = obs::counters();
  std::printf("teams: spawned=%llu reused=%llu\n",
              static_cast<unsigned long long>(
                  snap[obs::Counter::TeamSpawn]),
              static_cast<unsigned long long>(
                  snap[obs::Counter::TeamReuse]));
#endif
  // Exit status doubles as the CI assertion: the service must beat
  // per-call planning by >= 2x on the cached-shape stream.
  if (serve_rps < 2.0 * base_rps) {
    std::fprintf(stderr, "FAIL: service speedup %.2fx below the 2x bar\n",
                 serve_rps / base_rps);
    return 1;
  }
  return 0;
}
