// Shared helpers for the figure harnesses: run an engine a few times,
// report median seconds.
#pragma once

#include <algorithm>
#include <vector>

#include "common/aligned.h"
#include "common/rng.h"
#include "common/timer.h"
#include "fft/fft.h"

namespace bwfft::bench {

/// Median wall-time of `reps` executions of a planned 3D transform.
/// Input data is regenerated per rep from the saved original since
/// engines clobber their input.
template <typename Plan>
double time_plan(Plan& plan, cvec& in, cvec& out, const cvec& original,
                 int reps = 3) {
  std::vector<double> times;
  times.reserve(static_cast<std::size_t>(reps));
  for (int r = 0; r < reps; ++r) {
    std::copy(original.begin(), original.end(), in.begin());
    Timer t;
    plan.execute(in.data(), out.data());
    times.push_back(t.seconds());
  }
  std::sort(times.begin(), times.end());
  return times[times.size() / 2];
}

}  // namespace bwfft::bench
