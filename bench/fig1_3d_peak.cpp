// Figure 1 harness: 3D FFT performance as % of achievable peak.
//
// The paper's Fig 1 sweeps the eight cubes with sides 2^9/2^10 on a Kaby
// Lake 7700K and shows MKL/FFTW at <=47% of the STREAM-derived achievable
// peak while the double-buffered implementation reaches 80-90%.
//
// This harness reproduces the same series with our stand-ins:
//   naive pencil        ~ the strided worst case
//   stage-parallel      ~ MKL/FFTW-like transpose-based row-column
//   double-buffer       ~ the paper's contribution
// Sides default to 2^6/2^7 so the sweep fits a small machine; set
// BWFFT_FIG1_SHIFT=k to use sides 2^(6+k)/2^(7+k). The achievable peak is
// computed from the measured STREAM bandwidth of the host and nr_stages=3.
#include <cstdio>
#include <cstdlib>

#include "bench_util.h"
#include "benchutil/metrics.h"
#include "benchutil/table.h"
#include "stream/stream.h"

using namespace bwfft;

int main() {
  int shift = 0;
  if (const char* env = std::getenv("BWFFT_FIG1_SHIFT")) shift = std::atoi(env);
  const idx_t lo = idx_t{1} << (6 + shift);
  const idx_t hi = idx_t{1} << (7 + shift);

  const double bw = measured_stream_bandwidth_gbs();
  std::printf("Fig 1: 3D FFT %% of achievable peak (STREAM %.1f GB/s, "
              "nr_stages=3)\n\n", bw);

  Table table({"size", "peak GF/s", "pencil GF/s", "pencil %", "stagepar GF/s",
               "stagepar %", "dbuf GF/s", "dbuf %"});

  const idx_t sides[2] = {lo, hi};
  for (int a = 0; a < 2; ++a) {
    for (int b = 0; b < 2; ++b) {
      for (int c = 0; c < 2; ++c) {
        const idx_t k = sides[a], n = sides[b], m = sides[c];
        const idx_t total = k * n * m;
        const double peak = achievable_peak_gflops(
            static_cast<double>(total), 3, bw);

        cvec original = random_cvec(total);
        cvec in(original.size()), out(original.size());

        auto run = [&](EngineKind e) {
          FftOptions o;
          o.engine = e;
          Fft3d plan(k, n, m, Direction::Forward, o);
          const double secs = bench::time_plan(plan, in, out, original);
          return fft_gflops(static_cast<double>(total), secs);
        };

        const double gp = run(EngineKind::Pencil);
        const double gs = run(EngineKind::StageParallel);
        const double gd = run(EngineKind::DoubleBuffer);

        char label[64];
        std::snprintf(label, sizeof(label), "%lldx%lldx%lld",
                      static_cast<long long>(k), static_cast<long long>(n),
                      static_cast<long long>(m));
        table.add_row({label, fmt_double(peak), fmt_double(gp),
                       fmt_percent(gp / peak), fmt_double(gs),
                       fmt_percent(gs / peak), fmt_double(gd),
                       fmt_percent(gd / peak)});
      }
    }
  }
  table.print();
  std::printf("\nPaper reference (Kaby Lake 7700K): MKL/FFTW <= 47%% of "
              "peak; double-buffered 80-90%%.\n");
  return 0;
}
