// Figure 11 (top) harness: single-socket 3D FFT Gflop/s.
//
// Top-left (Intel Haswell 4770K): the paper's double-buffered code runs at
// ~30 Gflop/s, ~2x MKL/FFTW, 92% of the bandwidth roofline.
// Top-right (AMD FX-8350): the relevant baseline is FFTW's slab-pencil
// decomposition (AMD's larger caches favour it), and the paper's speedup
// is a smaller 1.6x.
//
// This harness measures our four engines over the size sweep and, next to
// the measured numbers, evaluates the paper-machine rooflines so the
// expected shape (double-buffer ~ roofline; stage-parallel below it;
// slab-pencil between, closer on AMD) is visible regardless of host.
#include <cstdio>
#include <cstdlib>

#include "bench_util.h"
#include "benchutil/metrics.h"
#include "benchutil/table.h"
#include "stream/stream.h"

using namespace bwfft;

int main() {
  int shift = 0;
  if (const char* env = std::getenv("BWFFT_FIG11_SHIFT")) shift = std::atoi(env);

  const double bw = measured_stream_bandwidth_gbs();
  std::printf("Fig 11 (top): single-socket 3D FFT, measured on host "
              "(STREAM %.1f GB/s)\n\n", bw);

  struct Size {
    idx_t k, n, m;
  };
  const Size sizes[] = {{64, 64, 64},   {64, 64, 128},  {64, 128, 128},
                        {128, 128, 128}};

  Table table({"size", "pencil GF/s", "stagepar GF/s", "slab GF/s",
               "dbuf GF/s", "dbuf/stagepar", "dbuf/slab"});

  for (const Size& s : sizes) {
    const idx_t k = s.k << shift, n = s.n << shift, m = s.m << shift;
    const idx_t total = k * n * m;
    cvec original = random_cvec(total);
    cvec in(original.size()), out(original.size());

    auto run = [&](EngineKind e) {
      FftOptions o;
      o.engine = e;
      Fft3d plan(k, n, m, Direction::Forward, o);
      const double secs = bench::time_plan(plan, in, out, original);
      return fft_gflops(static_cast<double>(total), secs);
    };

    const double gp = run(EngineKind::Pencil);
    const double gs = run(EngineKind::StageParallel);
    const double gl = run(EngineKind::SlabPencil);
    const double gd = run(EngineKind::DoubleBuffer);

    char label[64];
    std::snprintf(label, sizeof(label), "%lldx%lldx%lld",
                  static_cast<long long>(k), static_cast<long long>(n),
                  static_cast<long long>(m));
    table.add_row({label, fmt_double(gp), fmt_double(gs), fmt_double(gl),
                   fmt_double(gd), fmt_double(gd / gs, 2) + "x",
                   fmt_double(gd / gl, 2) + "x"});
  }
  table.print();

  // Rooflines at the paper machines' bandwidths: the double-buffered code
  // approaches 3 streamed stages; stage-parallel pays the same traffic
  // without overlap (paper: <=50% of peak); slab-pencil makes 2 round
  // trips but unoverlapped.
  std::printf("\nPaper-machine rooflines (3-stage achievable peak):\n\n");
  Table roof({"machine", "BW GB/s", "128^3 peak GF/s", "paper dbuf",
              "paper MKL/FFTW"});
  const double n128 = 128.0 * 128.0 * 128.0 * ((shift > 0) ? (1 << (3 * shift)) : 1);
  const auto has = machines::haswell_4770k();
  const auto amd = machines::amd_fx8350();
  const auto kaby = machines::kabylake_7700k();
  roof.add_row({has.name, fmt_double(has.stream_bw_gbs, 0),
                fmt_double(achievable_peak_gflops(n128, 3, has.stream_bw_gbs)),
                "~92% of peak (~30 GF/s)", "~45-50%"});
  roof.add_row({kaby.name, fmt_double(kaby.stream_bw_gbs, 0),
                fmt_double(achievable_peak_gflops(n128, 3, kaby.stream_bw_gbs)),
                "80-90% of peak", "<=47%"});
  roof.add_row({amd.name, fmt_double(amd.stream_bw_gbs, 0),
                fmt_double(achievable_peak_gflops(n128, 3, amd.stream_bw_gbs)),
                "1.6x over FFTW", "FFTW uses slab-pencil"});
  roof.print();
  return 0;
}
