// google-benchmark microbenchmarks for the 1D kernel layer: the batch and
// lane kernels the double-buffered stages are built from, and the strided
// in-place path the naive baseline uses.
#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "fft1d/fft1d.h"
#include "fft1d/fft1d_split.h"
#include "fft1d/mixed_radix.h"
#include "kernels/vecops.h"

namespace {

using namespace bwfft;

void BM_BatchContig(benchmark::State& state) {
  const idx_t n = state.range(0);
  const idx_t count = std::max<idx_t>((1 << 16) / n, 1);
  Fft1d plan(n, Direction::Forward);
  cvec data = random_cvec(n * count);
  for (auto _ : state) {
    plan.apply_batch(data.data(), count);
    benchmark::DoNotOptimize(data.data());
  }
  state.SetItemsProcessed(state.iterations() * n * count);
}
BENCHMARK(BM_BatchContig)->Arg(64)->Arg(256)->Arg(1024)->Arg(4096);

void BM_LanesCacheline(benchmark::State& state) {
  const idx_t n = state.range(0);
  const idx_t lanes = kMu;
  const idx_t count = std::max<idx_t>((1 << 16) / (n * lanes), 1);
  Fft1d plan(n, Direction::Forward);
  cvec data = random_cvec(n * lanes * count);
  for (auto _ : state) {
    plan.apply_lanes(data.data(), lanes, count);
    benchmark::DoNotOptimize(data.data());
  }
  state.SetItemsProcessed(state.iterations() * n * lanes * count);
}
BENCHMARK(BM_LanesCacheline)->Arg(64)->Arg(256)->Arg(1024);

void BM_LanesScalarForced(benchmark::State& state) {
  const idx_t n = state.range(0);
  const idx_t lanes = kMu;
  const idx_t count = std::max<idx_t>((1 << 16) / (n * lanes), 1);
  Fft1d plan(n, Direction::Forward);
  cvec data = random_cvec(n * lanes * count);
  set_force_scalar(true);
  for (auto _ : state) {
    plan.apply_lanes(data.data(), lanes, count);
    benchmark::DoNotOptimize(data.data());
  }
  set_force_scalar(false);
  state.SetItemsProcessed(state.iterations() * n * lanes * count);
}
BENCHMARK(BM_LanesScalarForced)->Arg(256);

void BM_StridedInplace(benchmark::State& state) {
  const idx_t n = state.range(0);
  const idx_t stride = state.range(1);
  Fft1d plan(n, Direction::Forward);
  cvec data = random_cvec(n * stride);
  for (auto _ : state) {
    plan.apply_strided_inplace(data.data(), stride);
    benchmark::DoNotOptimize(data.data());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_StridedInplace)
    ->Args({256, 1})
    ->Args({256, 16})
    ->Args({256, 256})
    ->Args({1024, 1024});

// Block-interleaved (split) compute kernel vs the interleaved one — the
// format-change ablation of §IV-A (ref [18]). Data is pre-packed; the
// benchmark isolates butterfly throughput.
void BM_LanesSplitFormat(benchmark::State& state) {
  const idx_t n = state.range(0);
  const idx_t lanes = kMu;
  const idx_t count = std::max<idx_t>((1 << 16) / (n * lanes), 1);
  SplitFft1d plan(n, Direction::Forward);
  cvec seed = random_cvec(n * lanes * count);
  dvec data(static_cast<std::size_t>(2 * n * lanes * count));
  for (idx_t t = 0; t < count; ++t) {
    SplitFft1d::pack(seed.data() + t * n * lanes,
                     data.data() + 2 * t * n * lanes, n, lanes);
  }
  for (auto _ : state) {
    plan.apply_lanes(data.data(), lanes, count);
    benchmark::DoNotOptimize(data.data());
  }
  state.SetItemsProcessed(state.iterations() * n * lanes * count);
}
BENCHMARK(BM_LanesSplitFormat)->Arg(64)->Arg(256)->Arg(1024);

void BM_MixedRadix(benchmark::State& state) {
  const idx_t n = state.range(0);
  MixedRadixFft plan(n, Direction::Forward);
  cvec data = random_cvec(n);
  for (auto _ : state) {
    plan.apply(data.data());
    benchmark::DoNotOptimize(data.data());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_MixedRadix)->Arg(120)->Arg(1000)->Arg(3600);

void BM_Bluestein(benchmark::State& state) {
  const idx_t n = state.range(0);  // non-power-of-two
  Fft1d plan(n, Direction::Forward);
  cvec data = random_cvec(n);
  for (auto _ : state) {
    plan.apply_batch(data.data(), 1);
    benchmark::DoNotOptimize(data.data());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_Bluestein)->Arg(100)->Arg(1000);

}  // namespace
