// Figure 9 harness: 2D FFT performance vs achievable peak.
//
// The paper sweeps large 2D sizes on the Kaby Lake 7700K: the
// double-buffered implementation averages ~74-75% of the achievable peak
// (2 stages), MKL/FFTW ~50%, with two expected artefacts: small sizes lose
// peak because iter = mn/b is small, and very large 1D rows lose peak
// because the transposed panel b/m x m gets too narrow to amortise TLB
// misses. The harness prints iter and b/m alongside %-of-peak so both
// trends are visible. Set BWFFT_FIG9_SHIFT to scale sizes by 2^k.
#include <cstdio>
#include <cstdlib>

#include "bench_util.h"
#include "benchutil/metrics.h"
#include "benchutil/table.h"
#include "pipeline/pipeline.h"
#include "stream/stream.h"

using namespace bwfft;

int main() {
  int shift = 0;
  if (const char* env = std::getenv("BWFFT_FIG9_SHIFT")) shift = std::atoi(env);

  const double bw = measured_stream_bandwidth_gbs();
  std::printf("Fig 9: 2D FFT %% of achievable peak (STREAM %.1f GB/s, "
              "nr_stages=2)\n\n", bw);

  struct Size {
    idx_t n, m;
  };
  // Mirrors the paper's mix of square and rectangular shapes.
  const Size sizes[] = {{256, 256},  {256, 512},   {512, 512},
                        {512, 1024}, {1024, 1024}, {1024, 2048},
                        {2048, 2048}};

  Table table({"size", "iter", "b/m", "peak GF/s", "pencil %", "stagepar %",
               "dbuf GF/s", "dbuf %"});

  for (const Size& s : sizes) {
    const idx_t n = s.n << shift, m = s.m << shift;
    const idx_t total = n * m;
    const double peak = achievable_peak_gflops(static_cast<double>(total), 2, bw);

    cvec original = random_cvec(total);
    cvec in(original.size()), out(original.size());

    idx_t block = 0;
    auto run = [&](EngineKind e) {
      FftOptions o;
      o.engine = e;
      Fft2d plan(n, m, Direction::Forward, o);
      if (e == EngineKind::DoubleBuffer) {
        block = default_block_elems(o.topo);
      }
      const double secs = bench::time_plan(plan, in, out, original);
      return fft_gflops(static_cast<double>(total), secs);
    };

    const double gp = run(EngineKind::Pencil);
    const double gs = run(EngineKind::StageParallel);
    const double gd = run(EngineKind::DoubleBuffer);

    char label[64];
    std::snprintf(label, sizeof(label), "%lldx%lld",
                  static_cast<long long>(n), static_cast<long long>(m));
    const idx_t iter = std::max<idx_t>(total / std::max<idx_t>(block, 1), 1);
    table.add_row({label, std::to_string(iter),
                   std::to_string(std::max<idx_t>(block / m, 1)),
                   fmt_double(peak), fmt_percent(gp / peak),
                   fmt_percent(gs / peak), fmt_double(gd),
                   fmt_percent(gd / peak)});
  }
  table.print();
  std::printf("\nPaper reference (Kaby Lake 7700K): double-buffered ~74%% of "
              "peak on average, MKL/FFTW ~50%%; efficiency dips for small "
              "iter and for very wide rows (TLB).\n");
  return 0;
}
