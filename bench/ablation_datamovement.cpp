// Ablation: the data-movement design choices of §III-A / §IV-A.
//
//  (a) non-temporal vs temporal stores in the W matrices — NT stores avoid
//      polluting the cache that holds the shared buffer;
//  (b) blocked rotation (mu = cacheline) vs element-wise rotation (mu = 1)
//      — the (K (x) I_mu) trick that moves whole cachelines;
//  (c) AVX vs scalar butterflies — the cache-aware SIMD compute kernel.
#include <cstdio>
#include <cstdlib>

#include "bench_util.h"
#include "benchutil/metrics.h"
#include "benchutil/table.h"
#include "kernels/vecops.h"

using namespace bwfft;

namespace {

double run_config(idx_t k, idx_t n, idx_t m, const FftOptions& o,
                  const cvec& original, cvec& in, cvec& out) {
  Fft3d plan(k, n, m, Direction::Forward, o);
  return bench::time_plan(plan, in, out, original);
}

}  // namespace

int main() {
  int shift = 0;
  if (const char* env = std::getenv("BWFFT_ABL_SHIFT")) shift = std::atoi(env);
  const idx_t k = 64 << shift, n = 64 << shift, m = 64 << shift;
  const idx_t total = k * n * m;

  cvec original = random_cvec(total);
  cvec in(original.size()), out(original.size());

  std::printf("Ablation: data movement, %lld^3 double-buffer engine\n\n",
              static_cast<long long>(m));

  Table table({"config", "GF/s", "vs baseline"});
  FftOptions base;
  base.engine = EngineKind::DoubleBuffer;

  const double t0 = run_config(k, n, m, base, original, in, out);
  const double g0 = fft_gflops(static_cast<double>(total), t0);
  table.add_row({"baseline (NT stores, mu=cacheline, AVX)", fmt_double(g0),
                 "1.00x"});

  {
    FftOptions o = base;
    o.nontemporal = false;
    const double t = run_config(k, n, m, o, original, in, out);
    table.add_row({"temporal stores",
                   fmt_double(fft_gflops(static_cast<double>(total), t)),
                   fmt_double(t0 / t, 2) + "x"});
  }
  {
    FftOptions o = base;
    o.packet_elems = 1;
    const double t = run_config(k, n, m, o, original, in, out);
    table.add_row({"element-wise rotation (mu=1)",
                   fmt_double(fft_gflops(static_cast<double>(total), t)),
                   fmt_double(t0 / t, 2) + "x"});
  }
  {
    set_force_scalar(true);
    const double t = run_config(k, n, m, base, original, in, out);
    set_force_scalar(false);
    table.add_row({"scalar butterflies",
                   fmt_double(fft_gflops(static_cast<double>(total), t)),
                   fmt_double(t0 / t, 2) + "x"});
  }
  table.print();
  std::printf("\nPaper reference: NT stores and cacheline-granular rotation "
              "are required for the streaming W matrices (§IV-A); the SIMD "
              "kernels keep the compute threads off the critical path.\n");
  return 0;
}
