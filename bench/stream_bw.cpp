// STREAM bandwidth harness ([1] in the paper).
//
// Prints the four kernel bandwidths for the host and the achievable-peak
// pseudo-Gflop/s they imply for 2-stage (2D) and 3-stage (3D) FFTs — the
// numbers every figure normalises against.
#include <cstdio>

#include "benchutil/metrics.h"
#include "benchutil/table.h"
#include "common/cpu.h"
#include "stream/stream.h"

using namespace bwfft;

int main() {
  std::printf("STREAM benchmark — %s\n\n", cpu_summary().c_str());
  const std::size_t elems = (64u << 20) / sizeof(double);
  const auto r = run_stream(elems, online_cpus());

  Table table({"kernel", "GB/s"});
  table.add_row({"Copy", fmt_double(r.copy_gbs, 1)});
  table.add_row({"Scale", fmt_double(r.scale_gbs, 1)});
  table.add_row({"Add", fmt_double(r.add_gbs, 1)});
  table.add_row({"Triad", fmt_double(r.triad_gbs, 1)});
  table.print();

  const double bw = r.best();
  std::printf("\nAchievable peak at %.1f GB/s:\n", bw);
  for (double logn : {16.0, 21.0, 24.0}) {
    const double n = std::pow(2.0, logn);
    std::printf("  N=2^%.0f: 2-stage %.2f GF/s, 3-stage %.2f GF/s\n", logn,
                achievable_peak_gflops(n, 2, bw),
                achievable_peak_gflops(n, 3, bw));
  }
  return 0;
}
